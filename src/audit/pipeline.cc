#include "src/audit/pipeline.h"

#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>

#include "src/audit/replayer.h"
#include "src/avmm/recorder.h"
#include "src/obs/trace.h"
#include "src/util/threadpool.h"

namespace avm {

ChunkedSyntacticChecker::ChunkedSyntacticChecker(const NodeId& node, uint64_t first_seq,
                                                 uint64_t last_seq, const Hash256& prior_hash,
                                                 std::span<const Authenticator> auths,
                                                 const KeyRegistry& registry,
                                                 const AuditConfig& cfg,
                                                 std::span<const int8_t> auth_sig_verdicts)
    : cfg_(cfg),
      registry_(registry),
      auths_(auths),
      auth_sig_verdicts_(auth_sig_verdicts),
      prior_hash_(prior_hash),
      auth_fail_idx_(std::numeric_limits<size_t>::max()),
      smc_(node, registry, cfg.strict_message_crossref) {
  for (size_t i = 0; i < auths.size(); i++) {
    if (auths[i].node == node && auths[i].seq >= first_seq && auths[i].seq <= last_seq) {
      auth_by_seq_.emplace(auths[i].seq, i);
      any_auth_relevant_ = true;
    }
  }
  if (cfg.attested_input) {
    attested_.emplace(node, registry);
  }
}

bool ChunkedSyntacticChecker::AnyFailure() const {
  return !chain_fail_.ok || !any_auth_relevant_ || !auth_fail_.ok || !smc_fail_.ok ||
         !attested_fail_.ok;
}

void ChunkedSyntacticChecker::Feed(std::span<const LogEntry> entries,
                                   std::span<const int8_t> smc_verdicts) {
  for (size_t i = 0; i < entries.size(); i++) {
    const LogEntry& e = entries[i];
    if (!chain_fail_.ok) {
      return;  // The verdict is fixed; later entries cannot matter.
    }
    fed_++;
    if (!started_) {
      started_ = true;
      expect_seq_ = e.seq;
      // VerifyChain's prechecks, evaluated against the actual first entry.
      if (e.seq == 0) {
        chain_fail_ = CheckResult::Fail("sequence numbers are 1-based", 0);
        return;
      }
      if (e.seq == 1 && !prior_hash_.IsZero()) {
        chain_fail_ = CheckResult::Fail("segment starts at seq 1 but prior hash is nonzero", 1);
        return;
      }
    }
    // The chain rule, link by link (shared with VerifyChain).
    CheckResult link = CheckChainLink(prior_hash_, expect_seq_, e);
    if (!link.ok) {
      chain_fail_ = link;
      return;
    }
    prior_hash_ = e.hash;
    expect_seq_++;

    // Authenticators whose seq just streamed by. Failures are recorded
    // under the authenticator's *span index*: the sequential scan
    // reports the first failing authenticator in span order, not in
    // seq order.
    auto [first, end] = auth_by_seq_.equal_range(e.seq);
    for (auto it = first; it != end; ++it) {
      CheckAuthAt(it->second, e.hash);
    }

    // The message-stream state machine; stops at its first failure (the
    // sequential scan never feeds past it). An authenticator failure
    // outranks anything these scans could report, so once one is
    // recorded their (RSA-heavy) work is moot and skipped — only the
    // chain hashing above still matters for the final verdict.
    if (auth_fail_.ok && smc_fail_.ok) {
      CheckResult r = smc_.Feed(e, i < smc_verdicts.size() ? smc_verdicts[i] : int8_t{-1});
      if (!r.ok) {
        smc_fail_ = r;
      }
    }
    if (auth_fail_.ok && smc_fail_.ok && attested_.has_value() && attested_fail_.ok) {
      CheckResult r = attested_->Feed(e);
      if (!r.ok) {
        attested_fail_ = r;
      }
    }
  }
}

void ChunkedSyntacticChecker::CheckAuthAt(size_t auth_index, const Hash256& log_hash) {
  if (auth_index >= auth_fail_idx_) {
    return;  // A smaller span index already failed.
  }
  const Authenticator& a = auths_[auth_index];
  const int8_t pre =
      auth_index < auth_sig_verdicts_.size() ? auth_sig_verdicts_[auth_index] : int8_t{-1};
  const bool sig_ok = pre >= 0 ? pre == 1 : a.VerifySignature(registry_);
  if (!sig_ok) {
    auth_fail_idx_ = auth_index;
    auth_fail_ = CheckResult::Fail("authenticator signature invalid", a.seq);
  } else if (log_hash != a.hash) {
    auth_fail_idx_ = auth_index;
    auth_fail_ =
        CheckResult::Fail("log does not match issued authenticator (tamper or fork)", a.seq);
  }
}

void ChunkedSyntacticChecker::ResolveAuthBehindWatermark(size_t auth_index,
                                                         const Hash256& log_hash) {
  CheckAuthAt(auth_index, log_hash);
}

void ChunkedSyntacticChecker::SerializeResumableState(Writer& w) const {
  smc_.SerializeState(w);
  w.U8(attested_.has_value() ? 1 : 0);
  if (attested_.has_value()) {
    attested_->SerializeState(w);
  }
}

void ChunkedSyntacticChecker::RestoreResumableState(Reader& r, uint64_t watermark_seq) {
  smc_.RestoreState(r);
  bool has_attested = r.U8() != 0;
  if (has_attested != attested_.has_value()) {
    throw SerdeError("checkpoint attested-input mode does not match the audit config");
  }
  if (attested_.has_value()) {
    attested_->RestoreState(r);
  }
  // Behave as if entries 1..watermark had been fed (they were, by the
  // audit that wrote the checkpoint): the next entry must chain from
  // the ctor's prior_hash at watermark+1, and Finalize() must not
  // mistake a fully-caught-up resume for an empty segment.
  started_ = true;
  expect_seq_ = watermark_seq + 1;
  fed_ = watermark_seq;
}

CheckResult ChunkedSyntacticChecker::Finalize() const {
  // Exactly the sequential composition: VerifyChain (prechecks + links),
  // then authenticator coverage + checks, then the message-stream scan
  // and its Finalize, then attested inputs.
  if (fed_ == 0) {
    return CheckResult::Fail("empty segment");
  }
  if (!chain_fail_.ok) {
    return chain_fail_;
  }
  if (!any_auth_relevant_) {
    return CheckResult::Fail("no authenticator covers the segment; cannot establish authenticity");
  }
  if (!auth_fail_.ok) {
    return auth_fail_;
  }
  if (!smc_fail_.ok) {
    return smc_fail_;
  }
  CheckResult fin = smc_.Finalize();
  if (!fin.ok) {
    return fin;
  }
  if (!attested_fail_.ok) {
    return attested_fail_;
  }
  return CheckResult::Ok();
}

namespace {

// Bounded handoff of checked chunks from the syntactic task to the
// replaying caller. The producer always runs to the end of the source
// (readability of every chunk is part of the sequential verdict), so
// the consumer must drain until Close().
struct ChunkQueue {
  static constexpr size_t kMaxQueued = 2;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<LogSegment> ready;
  bool closed = false;
  bool aborted = false;  // Consumer gone; pushes are discarded.

  void Push(LogSegment seg) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready.size() < kMaxQueued || aborted; });
    if (aborted) {
      return;
    }
    ready.push_back(std::move(seg));
    cv.notify_all();
  }
  void Close() {
    std::unique_lock<std::mutex> lock(mu);
    closed = true;
    cv.notify_all();
  }
  void Abort() {
    std::unique_lock<std::mutex> lock(mu);
    aborted = true;
    cv.notify_all();
  }
  // False = producer closed and nothing left.
  bool Pop(LogSegment* out) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !ready.empty() || closed; });
    if (ready.empty()) {
      return false;
    }
    *out = std::move(ready.front());
    ready.pop_front();
    cv.notify_all();
    return true;
  }
};

// Joins the producer task on every exit path: the task captures the
// queue, checker and result slots by reference, so if anything on the
// consumer side throws they must not be destroyed while the producer
// runs. Abort() also unblocks a producer waiting in Push().
struct PipelineJoinGuard {
  ChunkQueue* queue;
  ThreadPool* pool;
  ~PipelineJoinGuard() {
    queue->Abort();
    try {
      pool->Wait();
    } catch (...) {
      // Unwinding already; the producer swallows its own exceptions, so
      // nothing of value is lost here.
    }
  }
};

}  // namespace

AuditOutcome PipelinedStreamingAuditFull(const Avmm& target, const SegmentSource& source,
                                         ByteView reference_image,
                                         std::span<const Authenticator> auths,
                                         const KeyRegistry& registry, const AuditConfig& cfg,
                                         ThreadPool& pool) {
  if (pool.thread_count() <= 1) {
    // Submit() would run the producer inline and deadlock against the
    // bounded queue; callers must use the sequential path instead.
    throw std::logic_error("PipelinedStreamingAuditFull needs a pool with >1 threads");
  }
  const uint64_t last = source.LastSeq();
  const size_t chunk_entries = cfg.pipeline_chunk_entries > 0 ? cfg.pipeline_chunk_entries : 2048;

  // Replay gate, not a verdict: replay work is only worth starting if
  // every authenticator the verdict can depend on carries a valid
  // signature — otherwise a forged log (which anyone can chain-hash,
  // but only the accused machine can sign) would cost this auditor a
  // full replay before the syntactic check rejects it. The verdict
  // itself still comes from the checker, in sequential order; the RSA
  // results computed here are handed to the checker so no signature is
  // verified twice.
  std::vector<int8_t> auth_sig_verdicts(auths.size(), -1);
  std::vector<size_t> relevant;
  for (size_t i = 0; i < auths.size(); i++) {
    if (auths[i].node == source.node() && auths[i].seq >= 1 && auths[i].seq <= last) {
      relevant.push_back(i);
    }
  }
  // Fan the gate's RSA checks across the (otherwise still idle) pool,
  // as VerifyAgainstAuthenticators does on the materialized path.
  {
    obs::Span rsa_span(obs::kPhaseAuditRsaVerify, "audit");
    pool.ParallelFor(relevant.size(), [&](size_t k) {
      auth_sig_verdicts[relevant[k]] = auths[relevant[k]].VerifySignature(registry) ? 1 : 0;
    });
  }
  bool replay_worthwhile = !relevant.empty();
  for (size_t i : relevant) {
    replay_worthwhile = replay_worthwhile && auth_sig_verdicts[i] == 1;
  }

  AuditOutcome out;
  out.snapshot_bytes = 0;

  ChunkQueue queue;
  ChunkedSyntacticChecker checker(source.node(), 1, last, Hash256::Zero(), auths, registry, cfg,
                                  auth_sig_verdicts);
  std::string unreadable;          // Nonempty = some chunk failed to extract.
  bool have_unreadable = false;
  std::exception_ptr producer_err;  // Non-runtime_error exceptions, rethrown.
  uint64_t entry_wire_bytes = 0;
  double syn_seconds = 0;

  pool.Submit([&] {
    uint64_t s = 1;
    try {
      while (s <= last) {
        // Timed per chunk, around the extraction + checks only: time
        // blocked in Push() waiting for the replay consumer is not
        // syntactic work.
        WallTimer syn_timer;
        obs::Span syn_span(obs::kPhaseAuditSyntactic, "audit");
        const uint64_t to = std::min<uint64_t>(s + chunk_entries - 1, last);
        LogSegment chunk;
        try {
          chunk = source.Extract(s, to);
        } catch (const std::runtime_error& e) {
          // The sequential path extracts the whole range up front, so a
          // corrupt store anywhere in [1, last] yields the unreadable
          // outcome regardless of earlier check failures.
          unreadable = e.what();
          have_unreadable = true;
          break;
        }
        for (const LogEntry& e : chunk.entries) {
          entry_wire_bytes += e.WireSize();
        }
        // With spare workers beyond the producer + replayer pair, fan
        // this chunk's per-message RSA checks across the pool (same
        // precompute the materialized path uses; verdict-identical).
        // Once any failure is recorded the message scan is over — the
        // remaining chunks only need hashing, for chain/unreadable
        // precedence — so skip the (expensive) RSA precompute then.
        SigVerdicts smc_verdicts;
        if (pool.thread_count() > 2 && !checker.AnyFailure()) {
          smc_verdicts = PrecomputeMessageSigVerdicts(chunk, registry, pool);
        }
        checker.Feed(chunk.entries, smc_verdicts);
        syn_seconds += syn_timer.ElapsedSeconds();
        syn_span.End();  // Blocked time in Push() is not syntactic work.
        // Replay's result is discarded on any syntactic failure, so
        // stop shipping chunks once one is recorded (the checker still
        // scans the rest of the log: a later chain break or unreadable
        // chunk outranks the recorded failure).
        if (replay_worthwhile && !checker.AnyFailure()) {
          queue.Push(std::move(chunk));
        }
        s = to + 1;
      }
    } catch (...) {
      producer_err = std::current_exception();
    }
    queue.Close();
  });
  PipelineJoinGuard join_guard{&queue, &pool};

  StreamingReplayer replayer(reference_image, cfg.mem_size);
  replayer.mutable_machine().set_jit_enabled(cfg.jit_replay);
  std::exception_ptr replay_err;
  double sem_seconds = 0;
  {
    LogSegment chunk;
    while (queue.Pop(&chunk)) {
      if (replay_err != nullptr) {
        continue;  // Keep draining so the producer never blocks.
      }
      // Timed per chunk: time blocked in Pop() waiting for the
      // producer's syntactic work is not replay cost (symmetric with
      // the producer's syn_timer).
      WallTimer sem_timer;
      obs::Span replay_span(obs::kPhaseAuditReplay, "audit");
      try {
        replayer.Feed(chunk.entries);
      } catch (...) {
        // A hostile log can make the replayer throw (e.g. an oversized
        // DMA write). The sequential path only replays after the whole
        // syntactic check passed, so hold the exception until the
        // syntactic verdict is known.
        replay_err = std::current_exception();
      }
      sem_seconds += sem_timer.ElapsedSeconds();
    }
  }
  pool.Wait();
  if (producer_err != nullptr) {
    std::rethrow_exception(producer_err);
  }

  out.syntactic_seconds = syn_seconds;
  if (have_unreadable) {
    // Mirrors UnreadableSourceOutcome: no evidence, default semantic.
    out.syntactic = CheckResult::Fail(std::string("log source unreadable: ") + unreadable);
    out.ok = false;
    return out;
  }
  // Exact log_bytes of the sequential path: the segment serialization is
  // a fixed header plus each entry's wire encoding.
  out.log_bytes = LogSegment{source.node(), Hash256::Zero(), {}}.Serialize().size() +
                  entry_wire_bytes;
  // Evidence needs the whole serialized segment; this second read can
  // hit a store that broke *after* the scan, which must still surface
  // as an unreadable outcome, not an exception (auditor.h's contract).
  auto build_evidence = [&](EvidenceKind kind, const std::string& claim) -> bool {
    Evidence ev;
    ev.kind = kind;
    ev.accused = target.id();
    ev.claim = claim;
    try {
      ev.segment = source.Extract(1, last).Serialize();
    } catch (const std::runtime_error& e) {
      out.syntactic = CheckResult::Fail(std::string("log source unreadable: ") + e.what());
      out.semantic = ReplayResult{};
      out.evidence.reset();
      out.ok = false;
      return false;
    }
    for (const Authenticator& a : auths) {
      ev.auths.push_back(a.Serialize());
    }
    ev.mem_size = cfg.mem_size;
    out.evidence = std::move(ev);
    return true;
  };

  out.syntactic = checker.Finalize();
  if (!out.syntactic.ok) {
    build_evidence(EvidenceKind::kProtocolViolation, out.syntactic.reason);
    out.ok = false;
    return out;
  }
  if (replay_err != nullptr) {
    std::rethrow_exception(replay_err);
  }

  WallTimer finish_timer;
  obs::Span finish_span(obs::kPhaseAuditReplay, "audit");
  out.semantic = replayer.Finish();
  out.semantic_seconds = sem_seconds + finish_timer.ElapsedSeconds();
  finish_span.End();
  out.ok = out.semantic.ok;
  if (!out.ok) {
    build_evidence(EvidenceKind::kReplayDivergence, out.semantic.reason);
  }
  return out;
}

}  // namespace avm
