#include "src/audit/replay_analysis.h"

namespace avm {

void WriteWatchpointPass::OnInstruction(const Machine& m, const CpuState& before,
                                        const Insn& insn) {
  if (insn.op != Op::kSw && insn.op != Op::kSb) {
    return;
  }
  uint32_t addr = before.regs[insn.rb] + static_cast<uint32_t>(insn.SImm());
  uint32_t width = insn.op == Op::kSw ? 4 : 1;
  if (addr + width <= lo_ || addr >= hi_) {
    return;
  }
  AnalysisFinding f;
  f.pass = Name();
  f.detail = "guest store into watched region [" + std::to_string(lo_) + ", " +
             std::to_string(hi_) + ")";
  f.icount = m.cpu().icount;
  f.pc = before.pc;
  f.addr = addr;
  findings_.push_back(std::move(f));
}

void ExecRangePass::OnInstruction(const Machine& m, const CpuState& before, const Insn& insn) {
  (void)insn;
  if (before.pc >= lo_ && before.pc < hi_) {
    return;
  }
  // Report each escape once per target address to keep reports small.
  for (const AnalysisFinding& f : findings_) {
    if (f.pc == before.pc) {
      return;
    }
  }
  AnalysisFinding f;
  f.pass = Name();
  f.detail = "control flow escaped the code region (corrupted return address or function pointer?)";
  f.icount = m.cpu().icount;
  f.pc = before.pc;
  findings_.push_back(std::move(f));
}

namespace {

// Fans one Machine callback out to every pass.
class PassMux : public InstructionObserver {
 public:
  explicit PassMux(std::vector<std::unique_ptr<AnalysisPass>>* passes) : passes_(passes) {}
  void OnRetired(const Machine& m, const CpuState& before, const Insn& insn) override {
    retired_++;
    for (auto& p : *passes_) {
      p->OnInstruction(m, before, insn);
    }
  }
  uint64_t retired() const { return retired_; }

 private:
  std::vector<std::unique_ptr<AnalysisPass>>* passes_;
  uint64_t retired_ = 0;
};

}  // namespace

AnalysisReport AnalyzeSegment(const LogSegment& segment, ByteView reference_image, size_t mem_size,
                              std::vector<std::unique_ptr<AnalysisPass>> passes) {
  StreamingReplayer replayer(reference_image, mem_size);
  PassMux mux(&passes);
  replayer.mutable_machine().set_observer(&mux);
  replayer.Feed(segment.entries);

  AnalysisReport report;
  report.replay = replayer.Finish();
  report.instructions_analyzed = mux.retired();
  for (auto& p : passes) {
    for (AnalysisFinding& f : p->TakeFindings()) {
      report.findings.push_back(std::move(f));
    }
  }
  return report;
}

}  // namespace avm
