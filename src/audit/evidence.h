// Evidence (§3.3 step 5, §4.7): a self-contained, serializable object
// that convinces a third party of a fault without trusting the accuser or
// the accused. The third party repeats the auditor's checks using only
// public keys and the reference image.
#ifndef SRC_AUDIT_EVIDENCE_H_
#define SRC_AUDIT_EVIDENCE_H_

#include <string>
#include <vector>

#include "src/crypto/keys.h"
#include "src/tel/log.h"
#include "src/util/bytes.h"

namespace avm {

enum class EvidenceKind : uint8_t {
  // The log is authentic (chain + authenticators verify) but replay
  // diverges from the reference image: no correct execution exists.
  kReplayDivergence = 1,
  // The log is authentic but violates the protocol syntactically
  // (bad payload signature, unmatched ack, MAC/message mismatch...).
  kProtocolViolation = 2,
  // Two signed authenticators for the same seq with different hashes:
  // standalone proof of a forked log; no replay needed.
  kForkProof = 3,
};

const char* EvidenceKindName(EvidenceKind k);

struct Evidence {
  EvidenceKind kind = EvidenceKind::kReplayDivergence;
  NodeId accused;
  std::string claim;  // Human-readable description of the alleged fault.

  // kReplayDivergence / kProtocolViolation:
  Bytes segment;                       // Serialized LogSegment.
  std::vector<Bytes> auths;            // Serialized authenticators.
  std::vector<Bytes> snapshot_deltas;  // Increments to materialize the start
                                       // state, empty for image-start audits.
  uint64_t mem_size = 0;

  // kForkProof: exactly two serialized authenticators in `auths`.

  Bytes Serialize() const;
  static Evidence Deserialize(ByteView data);
};

struct EvidenceVerdict {
  bool fault_confirmed = false;
  std::string detail;
};

// Independently verifies evidence. The verifier needs only the key
// registry and its own trusted copy of the reference image. Accuracy
// (§4.7): if the accused is correct, no evidence can verify against it.
EvidenceVerdict VerifyEvidence(const Evidence& evidence, const KeyRegistry& registry,
                               ByteView reference_image);

}  // namespace avm

#endif  // SRC_AUDIT_EVIDENCE_H_
