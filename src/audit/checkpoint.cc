#include "src/audit/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <filesystem>
#include <utility>
#include <vector>

#include "src/audit/message_check.h"
#include "src/audit/pipeline.h"
#include "src/audit/replayer.h"
#include "src/avmm/recorder.h"
#include "src/avmm/snapshot.h"
#include "src/crypto/sha256.h"
#include "src/obs/trace.h"
#include "src/store/log_store.h"
#include "src/util/serde.h"
#include "src/util/threadpool.h"

namespace avm {

namespace {

constexpr char kCheckpointMagic[8] = {'A', 'V', 'M', 'C', 'K', 'P', 'T', '\n'};

Bytes SerializeCheckpointPayload(const AuditCheckpoint& cp) {
  Writer w;
  w.Str(cp.node);
  w.Str(cp.auditor);
  w.U64(cp.seq);
  w.Raw(cp.chain_hash.view());
  w.U64(cp.mem_size);
  w.Blob(cp.machine_state);
  w.Blob(cp.scan_state);
  w.U32(static_cast<uint32_t>(cp.verified_auth_hashes.size()));
  for (const auto& [seq, hash] : cp.verified_auth_hashes) {
    w.U64(seq);
    w.Raw(hash.view());
  }
  return w.Take();
}

}  // namespace

Hash256 AuditCheckpoint::PayloadDigest() const {
  return Sha256::Digest(SerializeCheckpointPayload(*this));
}

Bytes AuditCheckpoint::Serialize() const {
  Writer w;
  w.Raw(ByteView(reinterpret_cast<const uint8_t*>(kCheckpointMagic), 8));
  w.Blob(SerializeCheckpointPayload(*this));
  w.Raw(PayloadDigest().view());
  w.Blob(signature);
  return w.Take();
}

AuditCheckpoint AuditCheckpoint::Deserialize(ByteView data) {
  Reader outer(data);
  Bytes magic = outer.Raw(8);
  if (std::memcmp(magic.data(), kCheckpointMagic, 8) != 0) {
    throw SerdeError("bad audit-checkpoint magic");
  }
  Bytes payload = outer.Blob();
  Hash256 stored_digest = Hash256::FromBytes(outer.Raw(32));
  AuditCheckpoint cp;
  cp.signature = outer.Blob();
  outer.ExpectEnd();

  Reader r(payload);
  cp.node = r.Str();
  cp.auditor = r.Str();
  cp.seq = r.U64();
  cp.chain_hash = Hash256::FromBytes(r.Raw(32));
  cp.mem_size = r.U64();
  cp.machine_state = r.Blob();
  cp.scan_state = r.Blob();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    uint64_t seq = r.U64();
    cp.verified_auth_hashes[seq] = Hash256::FromBytes(r.Raw(32));
  }
  r.ExpectEnd();
  if (Sha256::Digest(payload) != stored_digest) {
    throw SerdeError("audit-checkpoint digest mismatch (file corrupt)");
  }
  return cp;
}

std::string AuditCheckpointFileName(const NodeId& auditor) {
  std::string safe = auditor;
  std::replace(safe.begin(), safe.end(), '/', '_');
  return "audit-" + safe + ".ckpt";
}

void SaveAuditCheckpoint(const std::string& dir, const AuditCheckpoint& cp, bool sync,
                         LogStore* aux_store) {
  std::filesystem::create_directories(dir);
  std::string path = (std::filesystem::path(dir) / AuditCheckpointFileName(cp.auditor)).string();
  if (aux_store != nullptr) {
    aux_store->WriteAuxFileBatched(path, cp.Serialize());
    return;
  }
  LogStore::WriteAuxFile(path, cp.Serialize(), sync);
}

std::optional<AuditCheckpoint> LoadAuditCheckpoint(const std::string& dir,
                                                   const NodeId& auditor,
                                                   std::string* reject_reason) {
  if (reject_reason != nullptr) {
    reject_reason->clear();
  }
  std::string path = (std::filesystem::path(dir) / AuditCheckpointFileName(auditor)).string();
  std::optional<Bytes> raw;
  try {
    raw = LogStore::ReadAuxFile(path);
  } catch (const std::runtime_error& e) {
    if (reject_reason != nullptr) {
      *reject_reason = std::string("checkpoint unreadable: ") + e.what();
    }
    return std::nullopt;
  }
  if (!raw.has_value()) {
    return std::nullopt;
  }
  try {
    return AuditCheckpoint::Deserialize(*raw);
  } catch (const SerdeError& e) {
    if (reject_reason != nullptr) {
      *reject_reason = std::string("checkpoint unparseable: ") + e.what();
    }
    return std::nullopt;
  }
}

namespace {

// Validated, ready-to-use resume state decoded from a checkpoint.
struct ResumeState {
  uint64_t watermark = 0;
  Hash256 chain_hash;
  MaterializedState machine;
  Bytes scan_state;
  std::map<uint64_t, Hash256> verified_auth_hashes;
};

// Validates `cp` against the log and the audit configuration. Returns
// the reason the checkpoint must be rejected, or "" with `out` filled.
// Everything in the file is untrusted input: a reject is a silent
// fall-back to a from-genesis audit, never an audit failure.
std::string ValidateCheckpoint(const AuditCheckpoint& cp, const SegmentSource& source,
                               uint64_t last, const KeyRegistry& registry,
                               const CheckpointConfig& ckpt, const AuditConfig& cfg,
                               std::span<const Authenticator> auths,
                               std::span<const size_t> relevant, ResumeState* out) {
  if (cp.node != source.node()) {
    return "checkpoint names a different node";
  }
  if (cp.auditor != ckpt.auditor) {
    return "checkpoint written by a different auditor";
  }
  // A forged checkpoint would let a tampered prefix escape verification,
  // so when the auditing identity has a real key the signature is
  // load-bearing, not optional.
  if (ckpt.signer != nullptr || registry.RequiresSignature(cp.auditor)) {
    if (!registry.VerifyDigest(cp.auditor, cp.PayloadDigest(), cp.signature)) {
      return "checkpoint signature invalid";
    }
  }
  if (cp.seq < 1 || cp.seq > last) {
    return "watermark beyond the end of the log (log rewound or foreign)";
  }
  if (cp.mem_size != cfg.mem_size) {
    return "checkpoint machine size does not match the audit config";
  }
  // The anchor: the log's stored chain hash at the watermark must still
  // be the one this auditor verified. Any prefix rewrite that
  // propagates hashes forward changes h_S and lands here; the fallback
  // genesis audit then catches the tamper itself.
  try {
    if (source.HashAt(cp.seq) != cp.chain_hash) {
      return "log chain hash at watermark changed (tamper or rewind)";
    }
  } catch (const std::exception& e) {
    return std::string("cannot read watermark entry: ") + e.what();
  }
  // Behind-watermark authenticators are re-checked against the hashes
  // recorded in the checkpoint; one we cannot resolve forces a genesis
  // audit (conservative: never changes a verdict, only costs speed).
  for (size_t idx : relevant) {
    if (auths[idx].seq <= cp.seq && cp.verified_auth_hashes.count(auths[idx].seq) == 0) {
      return "authenticator behind the watermark is not covered by the checkpoint";
    }
  }
  // Machine state: decode and authenticate against its recorded Merkle
  // root (the §4.4 rule, same as snapshot verification — Deserialize
  // rejects a state that does not hash to the root it claims).
  ResumeState rs;
  try {
    rs.machine = MaterializedState::Deserialize(cp.machine_state);
  } catch (const SerdeError& e) {
    return std::string("checkpoint machine state undecodable: ") + e.what();
  }
  if (rs.machine.memory.size() != cp.mem_size) {
    return "checkpoint memory size mismatch";
  }
  rs.watermark = cp.seq;
  rs.chain_hash = cp.chain_hash;
  rs.scan_state = cp.scan_state;
  rs.verified_auth_hashes = cp.verified_auth_hashes;
  *out = std::move(rs);
  return "";
}

// Joins an in-flight replay task on every exit path: the task captures
// stack locals by reference, so nothing may unwind past them while it
// runs.
struct ReplayTaskGuard {
  ThreadPool* pool;
  bool* in_flight;
  ~ReplayTaskGuard() {
    if (pool != nullptr && *in_flight) {
      try {
        pool->Wait();
      } catch (...) {
        // Already unwinding; the task stores its own exceptions.
      }
    }
  }
};

}  // namespace

ThreadPool* CheckpointedAuditor::EnsurePool() {
  if (pool_ == nullptr && ResolveThreads(cfg_.threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(cfg_.threads);
  }
  return pool_.get();
}

AuditOutcome CheckpointedAuditor::AuditFull(const Avmm& target, const SegmentSource& source,
                                            ByteView reference_image,
                                            std::span<const Authenticator> auths,
                                            const std::string& checkpoint_dir,
                                            ResumeInfo* info) {
  ResumeInfo local_info;
  ResumeInfo& ri = info != nullptr ? *info : local_info;
  ri = ResumeInfo{};

  AuditOutcome out;
  const uint64_t last = source.LastSeq();
  if (last == 0) {
    out.syntactic = CheckResult::Fail("empty segment");
    out.ok = false;
    return out;
  }
  if (auto rewound = DetectLogRewind(target, source, auths, *registry_, cfg_.mem_size)) {
    return *std::move(rewound);
  }
  ThreadPool* pool = EnsurePool();
  const size_t chunk_entries = cfg_.pipeline_chunk_entries > 0 ? cfg_.pipeline_chunk_entries : 2048;
  const uint64_t cadence = checkpoint_dir.empty() ? 0 : ckpt_.every_entries;

  WallTimer gate_timer;  // The auth gate's RSA work is syntactic cost.
  obs::Span gate_span(obs::kPhaseAuditRsaVerify, "audit");

  // Authenticator gate + precomputed sig verdicts, exactly as the
  // pipelined full audit does: replay is only worth starting when every
  // relevant authenticator carries a valid signature, and the RSA
  // results are handed to the checker so nothing is verified twice.
  std::vector<int8_t> auth_sig_verdicts(auths.size(), -1);
  std::vector<size_t> relevant;
  for (size_t i = 0; i < auths.size(); i++) {
    if (auths[i].node == source.node() && auths[i].seq >= 1 && auths[i].seq <= last) {
      relevant.push_back(i);
    }
  }
  if (pool != nullptr) {
    pool->ParallelFor(relevant.size(), [&](size_t k) {
      auth_sig_verdicts[relevant[k]] = auths[relevant[k]].VerifySignature(*registry_) ? 1 : 0;
    });
  } else {
    for (size_t i : relevant) {
      auth_sig_verdicts[i] = auths[i].VerifySignature(*registry_) ? 1 : 0;
    }
  }
  bool replay_gate = !relevant.empty();
  for (size_t i : relevant) {
    replay_gate = replay_gate && auth_sig_verdicts[i] == 1;
  }
  const double gate_seconds = gate_timer.ElapsedSeconds();
  gate_span.End();

  // Try to resume from a persisted checkpoint.
  ResumeState resume;
  bool resumed = false;
  if (cadence > 0) {
    obs::Span load_span(obs::kPhaseAuditCheckpointIo, "audit");
    std::string reject;
    std::optional<AuditCheckpoint> cp = LoadAuditCheckpoint(checkpoint_dir, ckpt_.auditor,
                                                            &reject);
    if (cp.has_value()) {
      reject = ValidateCheckpoint(*cp, source, last, *registry_, ckpt_, cfg_, auths, relevant,
                                  &resume);
    }
    if (cp.has_value() && reject.empty()) {
      resumed = true;
    } else if (!reject.empty()) {
      ri.checkpoint_rejected = true;
      ri.reject_reason = reject;
    }
  }

  AuditConfig cfg = cfg_;
  cfg.strict_message_crossref = true;
  // The checker holds a registry reference (not assignable), so the
  // scan-state fallback below re-emplaces instead of reassigning.
  std::optional<ChunkedSyntacticChecker> checker;
  checker.emplace(source.node(), 1, last, resumed ? resume.chain_hash : Hash256::Zero(), auths,
                  *registry_, cfg, auth_sig_verdicts);
  // In-place construction: the replayer registers itself as the
  // machine's device backend, so it must never move.
  std::optional<StreamingReplayer> replayer;
  // Chain hashes at relevant authenticator seqs, accumulated for future
  // captures (seeded with the resumed checkpoint's map, which validated
  // coverage of everything behind the watermark).
  std::map<uint64_t, Hash256> auth_hashes_seen;
  uint64_t start_seq = 1;
  uint64_t last_captured = 0;
  if (resumed) {
    auth_hashes_seen = resume.verified_auth_hashes;
    try {
      Reader r(resume.scan_state);
      checker->RestoreResumableState(r, resume.watermark);
      r.ExpectEnd();
    } catch (const SerdeError& e) {
      // Scan state undecodable: rebuild everything and start cold.
      resumed = false;
      ri.checkpoint_rejected = true;
      ri.reject_reason = std::string("checkpoint scan state undecodable: ") + e.what();
      auth_hashes_seen.clear();
      checker.emplace(source.node(), 1, last, Hash256::Zero(), auths, *registry_, cfg,
                      auth_sig_verdicts);
    }
  }
  if (resumed) {
    // Authenticators at or behind the watermark never stream by;
    // resolve them against the chain hashes verified when the
    // checkpoint was written, in span order like everything else.
    for (size_t idx : relevant) {
      if (auths[idx].seq <= resume.watermark) {
        checker->ResolveAuthBehindWatermark(idx, auth_hashes_seen.at(auths[idx].seq));
      }
    }
    replayer.emplace(resume.machine);
    start_seq = resume.watermark + 1;
    last_captured = resume.watermark;
    ri.resumed = true;
    ri.resumed_from = resume.watermark;
  } else {
    replayer.emplace(reference_image, cfg_.mem_size);
  }
  replayer->mutable_machine().set_jit_enabled(cfg_.jit_replay);

  // ---- The chunked scan: syntactic + replay, checkpoints at cadence
  // boundaries. With a pool, the replay of chunk i runs on a worker
  // while this thread extracts and checks chunk i+1 (joined before the
  // replayer is fed again and at every capture point).
  //
  // Everything the replay task touches by reference is declared BEFORE
  // the join guard, so an exception unwinding this frame joins the task
  // while its captures are still alive.
  const bool overlap = pool != nullptr && cfg_.pipelined;
  std::string unreadable;
  bool have_unreadable = false;
  std::exception_ptr replay_err;
  uint64_t entry_wire_bytes = 0;
  double syn_seconds = 0;
  double sem_seconds = 0;
  LogSegment inflight;  // Owned storage for the in-flight replay task.
  bool task_in_flight = false;
  ReplayTaskGuard task_guard{pool, &task_in_flight};
  auto join_replay = [&] {
    if (task_in_flight) {
      pool->Wait();
      task_in_flight = false;
    }
  };

  uint64_t s = start_seq;
  while (s <= last) {
    uint64_t to = std::min<uint64_t>(s + chunk_entries - 1, last);
    if (cadence > 0) {
      // End the chunk exactly on the next cadence boundary, so captures
      // always see checker and replayer aligned at a multiple of the
      // cadence (the boundary itself never affects any verdict).
      uint64_t boundary = ((s + cadence - 1) / cadence) * cadence;
      to = std::min(to, std::max(boundary, s));
    }
    WallTimer syn_timer;
    obs::Span syn_span(obs::kPhaseAuditSyntactic, "audit");
    LogSegment chunk;
    try {
      chunk = source.Extract(s, to);
    } catch (const std::runtime_error& e) {
      // Same precedence as the sequential whole-segment Extract: a
      // corrupt store anywhere in range yields the unreadable outcome.
      unreadable = e.what();
      have_unreadable = true;
      break;
    }
    for (const LogEntry& e : chunk.entries) {
      entry_wire_bytes += e.WireSize();
    }
    for (size_t idx : relevant) {
      if (auths[idx].seq >= s && auths[idx].seq <= to) {
        auth_hashes_seen[auths[idx].seq] = chunk.entries[auths[idx].seq - s].hash;
      }
    }
    // With spare workers beyond the replay task, fan this chunk's
    // per-message RSA checks across the pool (identical verdicts).
    SigVerdicts smc_verdicts;
    if (pool != nullptr && pool->thread_count() > 2 && !checker->AnyFailure()) {
      smc_verdicts = PrecomputeMessageSigVerdicts(chunk, *registry_, *pool);
    }
    checker->Feed(chunk.entries, smc_verdicts);
    syn_seconds += syn_timer.ElapsedSeconds();
    syn_span.End();  // join_replay() wait time is not syntactic work.

    join_replay();
    if (replay_gate && !checker->AnyFailure() && replay_err == nullptr) {
      if (overlap) {
        inflight = std::move(chunk);
        task_in_flight = true;
        pool->Submit([&] {
          WallTimer sem_timer;
          obs::Span replay_span(obs::kPhaseAuditReplay, "audit");
          try {
            replayer->Feed(inflight.entries);
          } catch (...) {
            // A hostile log can make the replayer throw; hold the
            // exception until the syntactic verdict is known, as the
            // sequential path (which replays only after the full
            // syntactic pass) would never have run it.
            replay_err = std::current_exception();
          }
          sem_seconds += sem_timer.ElapsedSeconds();
        });
      } else {
        WallTimer sem_timer;
        obs::Span replay_span(obs::kPhaseAuditReplay, "audit");
        try {
          replayer->Feed(chunk.entries);
        } catch (...) {
          replay_err = std::current_exception();
        }
        sem_seconds += sem_timer.ElapsedSeconds();
      }
    }

    // Capture on cadence boundaries, only from a fully verified,
    // replay-quiescent state that advanced past the resumed watermark.
    if (cadence > 0 && to % cadence == 0 && to > last_captured) {
      join_replay();
      if (replay_gate && !checker->AnyFailure() && replay_err == nullptr &&
          replayer->Checkpointable()) {
        AuditCheckpoint ncp;
        ncp.node = source.node();
        ncp.auditor = ckpt_.auditor;
        ncp.seq = to;
        ncp.chain_hash = checker->chain_cursor();
        ncp.mem_size = cfg_.mem_size;
        const Machine& m = replayer->machine();
        MaterializedState ms;
        ms.cpu = m.cpu();
        ms.memory = m.ReadMemRange(0, m.mem_size());
        ms.root = ComputeStateRoot(m);
        ncp.machine_state = ms.Serialize();
        Writer w;
        checker->SerializeResumableState(w);
        ncp.scan_state = w.Take();
        ncp.verified_auth_hashes = auth_hashes_seen;
        if (ckpt_.signer != nullptr) {
          ncp.signature = ckpt_.signer->SignDigest(ncp.PayloadDigest());
        }
        // Plain-file capture is a pure optimization: a full disk or an
        // unwritable directory must cost a future resume, never this
        // verdict. A failure from the auditee's own store, though, is a
        // store-health signal (poisoned writer, failed fsync) that the
        // fleet's retry/recovery path must see — rethrow it so the job
        // errors, the owner can reopen the store, and the audit reruns
        // instead of silently losing its checkpoint cadence.
        try {
          obs::Span save_span(obs::kPhaseAuditCheckpointIo, "audit");
          SaveAuditCheckpoint(checkpoint_dir, ncp, ckpt_.sync, ckpt_.aux_store);
          last_captured = to;
          ri.checkpoints_written++;
        } catch (const std::runtime_error&) {
          if (ckpt_.aux_store != nullptr) {
            throw;
          }
        }
      }
    }
    ri.entries_scanned += to - s + 1;
    s = to + 1;
  }
  join_replay();

  // ---- Verdict assembly: bit-for-bit the pipelined/sequential
  // AuditFull composition.
  out.syntactic_seconds = syn_seconds + gate_seconds;
  if (have_unreadable) {
    out.syntactic = CheckResult::Fail(std::string("log source unreadable: ") + unreadable);
    out.ok = false;
    return out;
  }
  out.log_bytes =
      LogSegment{source.node(), Hash256::Zero(), {}}.Serialize().size() + entry_wire_bytes;

  auto build_evidence = [&](EvidenceKind kind, const std::string& claim) {
    Evidence ev;
    ev.kind = kind;
    ev.accused = target.id();
    ev.claim = claim;
    try {
      ev.segment = source.Extract(1, last).Serialize();
    } catch (const std::runtime_error& e) {
      out.syntactic = CheckResult::Fail(std::string("log source unreadable: ") + e.what());
      out.semantic = ReplayResult{};
      out.evidence.reset();
      out.ok = false;
      return false;
    }
    for (const Authenticator& a : auths) {
      ev.auths.push_back(a.Serialize());
    }
    ev.mem_size = cfg_.mem_size;
    out.evidence = std::move(ev);
    return true;
  };

  out.syntactic = checker->Finalize();
  if (!out.syntactic.ok) {
    build_evidence(EvidenceKind::kProtocolViolation, out.syntactic.reason);
    out.ok = false;
    return out;
  }
  if (replay_err != nullptr) {
    std::rethrow_exception(replay_err);
  }

  WallTimer finish_timer;
  obs::Span finish_span(obs::kPhaseAuditReplay, "audit");
  out.semantic = replayer->Finish();
  out.semantic_seconds = sem_seconds + finish_timer.ElapsedSeconds();
  finish_span.End();
  out.ok = out.semantic.ok;
  if (!out.ok) {
    build_evidence(EvidenceKind::kReplayDivergence, out.semantic.reason);
  }
  return out;
}

}  // namespace avm
