#include "src/audit/auditor.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "src/avmm/attested_input.h"
#include "src/avmm/message.h"
#include "src/tel/batch.h"
#include "src/util/serde.h"
#include "src/vm/trace.h"

namespace avm {

namespace {

// Parses the (MessageRecord, payload_sig) pair stored in SEND/RECV entries.
bool ParseMessageEntry(const LogEntry& e, MessageRecord* msg, Bytes* sig) {
  try {
    Reader r(e.content);
    *msg = MessageRecord::Deserialize(r.Blob());
    *sig = r.Blob();
    r.ExpectEnd();
    return true;
  } catch (const SerdeError&) {
    return false;
  }
}

// Signature verdicts for one segment, indexed by entry position:
// -1 = nothing precomputed (the sequential scan verifies inline),
// 0/1 = the entry's RSA check failed/passed.
using SigVerdicts = std::vector<int8_t>;

// Fans the per-entry RSA verifications — SEND/RECV payload signatures
// and ACK authenticators — across the pool. Only entries that parse and
// pass their node check are precomputed; those are exactly the entries
// whose signatures the sequential scan would reach, so consuming the
// verdicts in order yields an identical result. (For a segment that
// fails earlier for a non-signature reason this does some wasted
// verifications; verdict-changing it is not.)
SigVerdicts PrecomputeSignatureChecks(const LogSegment& segment, const KeyRegistry& registry,
                                      ThreadPool& pool) {
  struct SigJob {
    size_t entry;
    bool is_ack;
    MessageRecord msg;  // Parsed once here; valid when !is_ack.
    Bytes sig;
    Authenticator ack_auth;  // Valid when is_ack.
  };
  SigVerdicts verdicts(segment.entries.size(), -1);
  std::vector<SigJob> jobs;
  for (size_t i = 0; i < segment.entries.size(); i++) {
    const LogEntry& e = segment.entries[i];
    switch (e.type) {
      case EntryType::kSend:
      case EntryType::kRecv: {
        SigJob job{i, false, {}, {}, {}};
        if (ParseMessageEntry(e, &job.msg, &job.sig) &&
            (e.type == EntryType::kSend ? job.msg.src : job.msg.dst) == segment.node) {
          jobs.push_back(std::move(job));
        }
        break;
      }
      case EntryType::kAck: {
        try {
          AckFrame ack = AckFrame::Deserialize(e.content);
          if (ack.orig_src == segment.node) {
            jobs.push_back({i, true, {}, {}, std::move(ack.auth)});
          }
        } catch (const SerdeError&) {
        }
        break;
      }
      default:
        break;
    }
  }
  // Signature-less entries (batched/async sign modes) are resolved
  // against PeerCommitRecords by the sequential scan, not by an RSA
  // check here; leave their verdicts at -1.
  std::erase_if(jobs, [](const SigJob& job) {
    return job.is_ack ? job.ack_auth.signature.empty() : job.sig.empty();
  });
  pool.ParallelFor(jobs.size(), [&](size_t k) {
    const SigJob& job = jobs[k];
    bool ok = job.is_ack ? job.ack_auth.VerifySignature(registry)
                         : registry.Verify(job.msg.src, job.msg.Serialize(), job.sig);
    verdicts[job.entry] = ok ? 1 : 0;
  });
  return verdicts;
}

}  // namespace

// The message-stream state machine, factored so the same code runs over
// a materialized segment (SyntacticMessageCheck) and over a streaming
// cursor (StreamingSyntacticCheck). Feed() consumes entries in log
// order; `sig_verdict` is a precomputed RSA result (-1 = verify inline),
// so the batch path with a pool and every streaming path produce
// identical verdicts at identical seqs.
//
// Batched/async sign modes elide per-message signatures: SEND/RECV
// entries carry an empty payload signature and ACK entries an unsigned
// authenticator. A signature-less SEND needs no extra check (the
// chain + the node's own authenticators already commit it); a
// signature-less RECV or ACK is held *pending* until a PeerCommitRecord
// (logged by the transport when the peer's windowed commitment
// verified) proves the peer's signed chain contains the matching
// SEND(m) / RECV(m). Finalize() fails any entry still unproven at the
// end of a strict scan. Sync-mode logs contain no empty signatures
// under a real scheme and no PeerCommitRecords, so their verdicts are
// bit-for-bit unchanged.
class MessageCheckState {
 public:
  MessageCheckState(NodeId node, const KeyRegistry& registry, const AuditConfig& cfg)
      : node_(std::move(node)), registry_(registry), cfg_(cfg) {}

  CheckResult Feed(const LogEntry& e, int8_t sig_verdict) {
    auto sig_ok = [&](const std::function<bool()>& verify_inline) {
      return sig_verdict >= 0 ? sig_verdict == 1 : verify_inline();
    };
    switch (e.type) {
      case EntryType::kSend: {
        MessageRecord msg;
        Bytes sig;
        if (!ParseMessageEntry(e, &msg, &sig)) {
          return CheckResult::Fail("malformed SEND entry", e.seq);
        }
        if (msg.src != node_) {
          return CheckResult::Fail("SEND entry with foreign source", e.seq);
        }
        if (sig.empty() && registry_.RequiresSignature(msg.src)) {
          // Batched mode: our own SEND needs no per-message signature —
          // the hash chain plus this node's windowed authenticators
          // commit it, and that is what the segment was verified against.
        } else if (!sig_ok([&] { return registry_.Verify(msg.src, msg.Serialize(), sig); })) {
          return CheckResult::Fail("SEND payload signature invalid", e.seq);
        }
        // Cross-reference: the sent payload must be derived from the most
        // recent packet the guest actually transmitted ([src_idx] + tail).
        if (msg.payload.size() < 4 ||
            (cfg_.strict_message_crossref &&
             (!have_tx_ || !BytesEqual(ByteView(msg.payload).subspan(4), current_tx_tail_)))) {
          return CheckResult::Fail("SEND does not correspond to a guest transmission", e.seq);
        }
        sent_ids_[{msg.dst, msg.msg_id}] = true;
        break;
      }
      case EntryType::kRecv: {
        MessageRecord msg;
        Bytes sig;
        if (!ParseMessageEntry(e, &msg, &sig)) {
          return CheckResult::Fail("malformed RECV entry", e.seq);
        }
        if (msg.dst != node_) {
          return CheckResult::Fail("RECV entry with foreign destination", e.seq);
        }
        if (sig.empty() && registry_.RequiresSignature(msg.src)) {
          // Batched mode: authenticity comes from the sender's signed
          // chain containing SEND with this very content (sender and
          // receiver log identical content bytes).
          Hash256 ch = Sha256::Digest(e.content);
          PeerProof& proof = peer_proofs_[msg.src];
          if (proof.send_contents.count(ch) == 0) {
            pending_recvs_.push_back({e.seq, msg.src, ch});
          }
        } else if (!sig_ok([&] { return registry_.Verify(msg.src, msg.Serialize(), sig); })) {
          return CheckResult::Fail("RECV payload signature invalid", e.seq);
        }
        recv_queue_.push_back(msg.payload);
        break;
      }
      case EntryType::kAck: {
        AckFrame ack;
        try {
          ack = AckFrame::Deserialize(e.content);
        } catch (const SerdeError&) {
          return CheckResult::Fail("malformed ACK entry", e.seq);
        }
        if (ack.orig_src != node_) {
          return CheckResult::Fail("ACK entry for a foreign message", e.seq);
        }
        if (cfg_.strict_message_crossref &&
            sent_ids_.find({ack.acker, ack.msg_id}) == sent_ids_.end()) {
          return CheckResult::Fail("ACK for a message never sent", e.seq);
        }
        if (ack.auth.signature.empty() && registry_.RequiresSignature(ack.auth.node)) {
          // Batched mode: the acker's windowed commitment must cover
          // (seq, hash) of its RECV entry.
          if (ack.auth.node != ack.acker) {
            return CheckResult::Fail("ACK authenticator names a third party", e.seq);
          }
          PeerProof& proof = peer_proofs_[ack.auth.node];
          auto it = proof.chain.find(ack.auth.seq);
          if (it == proof.chain.end() || it->second != ack.auth.hash) {
            pending_acks_.push_back({e.seq, ack.auth});
          }
        } else if (!sig_ok([&] { return ack.auth.VerifySignature(registry_); })) {
          return CheckResult::Fail("ACK carries an invalid authenticator", e.seq);
        }
        break;
      }
      case EntryType::kTraceTime:
      case EntryType::kTraceMac:
      case EntryType::kTraceOther: {
        TraceEvent ev;
        try {
          ev = TraceEvent::Deserialize(e.content);
        } catch (const SerdeError&) {
          return CheckResult::Fail("malformed trace entry", e.seq);
        }
        if (ClassifyTraceEvent(ev) != e.type) {
          return CheckResult::Fail("trace entry filed under the wrong stream", e.seq);
        }
        if (ev.kind == TraceKind::kOutPacket) {
          if (ev.data.size() < 4) {
            return CheckResult::Fail("guest TX packet shorter than its header", e.seq);
          }
          current_tx_tail_.assign(ev.data.begin() + 4, ev.data.end());
          have_tx_ = true;
        } else if (ev.kind == TraceKind::kDmaPacket) {
          // Every packet delivered into the AVM must be one the machine
          // actually received (in order).
          if (recv_queue_.empty()) {
            if (cfg_.strict_message_crossref) {
              return CheckResult::Fail("packet delivered into AVM without matching RECV", e.seq);
            }
          } else if (BytesEqual(recv_queue_.front(), ev.data)) {
            recv_queue_.pop_front();
          } else if (cfg_.strict_message_crossref) {
            return CheckResult::Fail("delivered packet differs from received message", e.seq);
          }
        }
        break;
      }
      case EntryType::kSnapshot: {
        try {
          SnapshotMeta::Deserialize(e.content);
        } catch (const SerdeError&) {
          return CheckResult::Fail("malformed snapshot entry", e.seq);
        }
        break;
      }
      case EntryType::kInfo:
        if (PeerCommitRecord::IsPeerCommit(e.content)) {
          return FeedPeerCommit(e);
        }
        break;
    }
    return CheckResult::Ok();
  }

  // Strict scans must end with nothing pending: an unproven entry means
  // the log accepted a message no signed commitment ever covered.
  CheckResult Finalize() const {
    if (!cfg_.strict_message_crossref) {
      // Spot-check windows can end mid-window; the commitment proving
      // their tail lives outside the segment, so pending entries are
      // tolerated here. The audit cannot know the log's sign mode, so
      // this leniency extends to signature-less entries a sync-mode
      // cheater might plant -- consistent with the window's other
      // relaxations (ack pairing, mid-queue crossref), spot checks
      // trade that coverage for cost; the strict full audit is the
      // authoritative verdict and fails any unproven entry.
      return CheckResult::Ok();
    }
    uint64_t first_bad = UINT64_MAX;
    for (const PendingRecv& p : pending_recvs_) {
      first_bad = std::min(first_bad, p.seq);
    }
    for (const PendingAck& p : pending_acks_) {
      first_bad = std::min(first_bad, p.seq);
    }
    if (first_bad != UINT64_MAX) {
      return CheckResult::Fail("entry not covered by the peer's signed batch commitment",
                               first_bad);
    }
    return CheckResult::Ok();
  }

 private:
  // What a peer's verified batch commitments have proven so far.
  struct PeerProof {
    bool seen = false;
    uint64_t commit_seq = 0;  // Chain position of the last commitment.
    Hash256 commit_hash;
    std::set<Hash256> send_contents;     // H(content) of proven SEND links.
    std::map<uint64_t, Hash256> chain;   // Proven seq -> chain hash.
  };
  struct PendingRecv {
    uint64_t seq;
    NodeId src;
    Hash256 content_hash;
  };
  struct PendingAck {
    uint64_t seq;
    Authenticator auth;
  };

  CheckResult FeedPeerCommit(const LogEntry& e) {
    PeerCommitRecord rec;
    try {
      rec = PeerCommitRecord::Deserialize(e.content);
    } catch (const SerdeError&) {
      return CheckResult::Fail("malformed peer-commit entry", e.seq);
    }
    if (rec.batch.commit.node != rec.peer) {
      return CheckResult::Fail("peer-commit names the wrong node", e.seq);
    }
    PeerProof& proof = peer_proofs_[rec.peer];
    if (proof.seen) {
      // Each record extends the previous one: the walk start must be the
      // last commitment, so the proofs form one connected chain.
      if (rec.batch.prior_seq != proof.commit_seq ||
          rec.batch.prior_hash != proof.commit_hash) {
        return CheckResult::Fail("peer-commit does not extend the previous commitment", e.seq);
      }
    } else if (cfg_.strict_message_crossref &&
               (rec.batch.prior_seq != 0 || !rec.batch.prior_hash.IsZero())) {
      // A full log's first proof for a peer must anchor at the peer's
      // log head; spot-check windows may start mid-history.
      return CheckResult::Fail("peer-commit does not anchor at the peer's log head", e.seq);
    }
    CheckResult ok = rec.batch.Verify(registry_);  // Walk + one RSA check.
    if (!ok.ok) {
      return CheckResult::Fail("peer-commit invalid: " + ok.reason, e.seq);
    }
    Hash256 h = rec.batch.prior_hash;
    for (const ChainLink& l : rec.batch.links) {
      h = ApplyChainLink(h, l);
      proof.chain[l.seq] = h;
      if (l.type == EntryType::kSend) {
        proof.send_contents.insert(l.content_hash);
      }
    }
    proof.seen = true;
    proof.commit_seq = rec.batch.commit.seq;
    proof.commit_hash = rec.batch.commit.hash;

    // Resolve anything this window proves (proof may arrive before or
    // after the entry it covers; both orders are legitimate).
    std::erase_if(pending_recvs_, [&](const PendingRecv& p) {
      return p.src == rec.peer && proof.send_contents.count(p.content_hash) > 0;
    });
    std::erase_if(pending_acks_, [&](const PendingAck& p) {
      if (p.auth.node != rec.peer) {
        return false;
      }
      auto it = proof.chain.find(p.auth.seq);
      return it != proof.chain.end() && it->second == p.auth.hash;
    });
    return CheckResult::Ok();
  }

  NodeId node_;
  const KeyRegistry& registry_;
  AuditConfig cfg_;
  // RECV payloads waiting to be delivered into the guest (FIFO).
  std::deque<Bytes> recv_queue_;
  // Tail (bytes after the 4-byte dst header) of the latest guest TX.
  Bytes current_tx_tail_;
  bool have_tx_ = false;
  // msg_ids this node has sent (for ack pairing).
  std::map<std::pair<NodeId, uint64_t>, bool> sent_ids_;
  // Batched-mode bookkeeping.
  std::map<NodeId, PeerProof> peer_proofs_;
  std::vector<PendingRecv> pending_recvs_;
  std::vector<PendingAck> pending_acks_;
};

CheckResult SyntacticMessageCheck(const LogSegment& segment, const KeyRegistry& registry,
                                  const AuditConfig& cfg, ThreadPool* pool) {
  SigVerdicts precomputed;
  if (pool != nullptr && pool->thread_count() > 1) {
    precomputed = PrecomputeSignatureChecks(segment, registry, *pool);
  }
  MessageCheckState state(segment.node, registry, cfg);
  for (size_t i = 0; i < segment.entries.size(); i++) {
    int8_t verdict = i < precomputed.size() ? precomputed[i] : int8_t{-1};
    CheckResult r = state.Feed(segment.entries[i], verdict);
    if (!r.ok) {
      return r;
    }
  }
  return state.Finalize();
}

CheckResult StreamingSyntacticCheck(const SegmentSource& source,
                                    std::span<const Authenticator> auths,
                                    const KeyRegistry& registry, const AuditConfig& cfg) {
  uint64_t last = source.LastSeq();
  if (last == 0) {
    return CheckResult::Fail("empty segment");
  }
  // Authenticators that cover the log, keyed by seq; mirrors
  // VerifyAgainstAuthenticators' coverage requirement.
  std::multimap<uint64_t, const Authenticator*> by_seq;
  for (const Authenticator& a : auths) {
    if (a.node == source.node() && a.seq >= 1 && a.seq <= last) {
      by_seq.emplace(a.seq, &a);
    }
  }
  if (by_seq.empty()) {
    return CheckResult::Fail("no authenticator covers the segment; cannot establish authenticity");
  }
  MessageCheckState state(source.node(), registry, cfg);
  Hash256 prev = Hash256::Zero();
  uint64_t expect_seq = 1;
  CheckResult result = CheckResult::Ok();
  try {
    source.Scan(1, last, [&](const LogEntry& e) {
      if (e.seq != expect_seq) {
        result = CheckResult::Fail("non-consecutive sequence numbers", e.seq);
        return false;
      }
      if (ChainHash(prev, e.seq, e.type, e.content) != e.hash) {
        result = CheckResult::Fail("hash chain broken", e.seq);
        return false;
      }
      auto [first, end] = by_seq.equal_range(e.seq);
      for (auto it = first; it != end; ++it) {
        if (!it->second->VerifySignature(registry)) {
          result = CheckResult::Fail("authenticator signature invalid", e.seq);
          return false;
        }
        if (e.hash != it->second->hash) {
          result =
              CheckResult::Fail("log does not match issued authenticator (tamper or fork)", e.seq);
          return false;
        }
      }
      CheckResult r = state.Feed(e, -1);
      if (!r.ok) {
        result = r;
        return false;
      }
      prev = e.hash;
      expect_seq++;
      return true;
    });
  } catch (const std::runtime_error& err) {
    // Store-layer corruption (CRC mismatch, truncated segment, ...): the
    // log cannot be verified past this point.
    return CheckResult::Fail(std::string("log store unreadable: ") + err.what(), expect_seq);
  }
  if (result.ok) {
    result = state.Finalize();
  }
  return result;
}

std::vector<SnapshotIndexEntry> IndexSnapshots(const TamperEvidentLog& log) {
  std::vector<SnapshotIndexEntry> out;
  for (const LogEntry& e : log.entries()) {
    if (e.type == EntryType::kSnapshot) {
      out.push_back({e.seq, SnapshotMeta::Deserialize(e.content)});
    }
  }
  return out;
}

std::vector<SnapshotIndexEntry> IndexSnapshots(const SegmentSource& source) {
  std::vector<SnapshotIndexEntry> out;
  if (source.LastSeq() == 0) {
    return out;
  }
  source.Scan(1, source.LastSeq(), [&](const LogEntry& e) {
    if (e.type == EntryType::kSnapshot) {
      out.push_back({e.seq, SnapshotMeta::Deserialize(e.content)});
    }
    return true;
  });
  return out;
}

std::string AuditOutcome::Describe() const {
  std::ostringstream os;
  if (ok) {
    os << "PASS";
  } else if (!syntactic.ok) {
    os << "FAIL (syntactic): " << syntactic.reason << " at seq " << syntactic.bad_seq;
  } else {
    os << "FAIL (semantic): " << semantic.reason << " at seq " << semantic.diverged_seq;
  }
  return os.str();
}

AuditOutcome Auditor::Run(const Avmm& target, const LogSegment& segment,
                          std::span<const Authenticator> auths, ByteView reference_image,
                          const MaterializedState* start_state, uint64_t snapshot_bytes,
                          bool strict_crossref, ThreadPool* pool) {
  AuditOutcome out;
  out.log_bytes = segment.Serialize().size();
  out.snapshot_bytes = snapshot_bytes;

  WallTimer syn_timer;
  out.syntactic = VerifyAgainstAuthenticators(segment, auths, *registry_, pool);
  if (out.syntactic.ok) {
    AuditConfig cfg = cfg_;
    cfg.strict_message_crossref = strict_crossref;
    out.syntactic = SyntacticMessageCheck(segment, *registry_, cfg, pool);
  }
  if (out.syntactic.ok && cfg_.attested_input) {
    out.syntactic = VerifyAttestedInputs(segment, *registry_);
  }
  out.syntactic_seconds = syn_timer.ElapsedSeconds();

  if (!out.syntactic.ok) {
    Evidence ev;
    ev.kind = EvidenceKind::kProtocolViolation;
    ev.accused = target.id();
    ev.claim = out.syntactic.reason;
    ev.segment = segment.Serialize();
    for (const Authenticator& a : auths) {
      ev.auths.push_back(a.Serialize());
    }
    ev.mem_size = cfg_.mem_size;
    out.evidence = std::move(ev);
    out.ok = false;
    return out;
  }

  WallTimer sem_timer;
  out.semantic = start_state != nullptr
                     ? ReplaySegment(segment, *start_state)
                     : ReplaySegment(segment, reference_image, cfg_.mem_size);
  out.semantic_seconds = sem_timer.ElapsedSeconds();

  out.ok = out.semantic.ok;
  if (!out.ok) {
    Evidence ev;
    ev.kind = EvidenceKind::kReplayDivergence;
    ev.accused = target.id();
    ev.claim = out.semantic.reason;
    ev.segment = segment.Serialize();
    for (const Authenticator& a : auths) {
      ev.auths.push_back(a.Serialize());
    }
    if (start_state != nullptr) {
      // Ship the snapshot increments so a third party can materialize the
      // same (verified) start state.
      const SnapshotStore& store = target.snapshot_store();
      uint64_t start_id = SnapshotMeta::Deserialize(segment.entries.front().content).snapshot_id;
      for (uint64_t id = 0; id <= start_id; id++) {
        ev.snapshot_deltas.push_back(store.Get(id).Serialize());
      }
    }
    ev.mem_size = cfg_.mem_size;
    out.evidence = std::move(ev);
  }
  return out;
}

AuditOutcome Auditor::AuditFull(const Avmm& target, ByteView reference_image,
                                std::span<const Authenticator> auths) {
  return AuditFull(target, InMemorySegmentSource(target.log()), reference_image, auths);
}

namespace {

// An audit source is untrusted input: a corrupt or truncated store
// (CRC mismatch, torn segment, garbage snapshot entry) must fail the
// audit, not escape as an exception. Range errors (std::out_of_range,
// a logic_error) still propagate, matching the in-memory contract.
AuditOutcome UnreadableSourceOutcome(const std::runtime_error& e) {
  AuditOutcome out;
  out.syntactic = CheckResult::Fail(std::string("log source unreadable: ") + e.what());
  return out;
}

}  // namespace

AuditOutcome Auditor::AuditFull(const Avmm& target, const SegmentSource& source,
                                ByteView reference_image, std::span<const Authenticator> auths) {
  LogSegment segment;
  try {
    segment = source.Extract(1, source.LastSeq());
  } catch (const std::runtime_error& e) {
    return UnreadableSourceOutcome(e);
  }
  return Run(target, segment, auths, reference_image, nullptr, 0, /*strict_crossref=*/true,
             EnsurePool());
}

AuditOutcome Auditor::SpotCheck(const Avmm& target, uint64_t from_snapshot_id,
                                uint64_t to_snapshot_id, std::span<const Authenticator> auths) {
  InMemorySegmentSource source(target.log());
  return SpotCheck(target, source, from_snapshot_id, to_snapshot_id, auths);
}

AuditOutcome Auditor::SpotCheck(const Avmm& target, const SegmentSource& source,
                                uint64_t from_snapshot_id, uint64_t to_snapshot_id,
                                std::span<const Authenticator> auths) {
  std::vector<SnapshotIndexEntry> snaps;
  try {
    snaps = IndexSnapshots(source);
  } catch (const std::runtime_error& e) {
    return UnreadableSourceOutcome(e);
  }
  return SpotCheckImpl(target, source, snaps, from_snapshot_id, to_snapshot_id, auths,
                       EnsurePool());
}

std::vector<AuditOutcome> Auditor::SpotCheckMany(
    const Avmm& target, std::span<const std::pair<uint64_t, uint64_t>> windows,
    std::span<const Authenticator> auths) {
  return SpotCheckMany(target, InMemorySegmentSource(target.log()), windows, auths);
}

std::vector<AuditOutcome> Auditor::SpotCheckMany(
    const Avmm& target, const SegmentSource& source,
    std::span<const std::pair<uint64_t, uint64_t>> windows,
    std::span<const Authenticator> auths) {
  std::vector<AuditOutcome> out(windows.size());
  // One snapshot-index scan for all windows: for a store-backed source
  // the scan reads every segment from disk.
  std::vector<SnapshotIndexEntry> snaps;
  try {
    snaps = IndexSnapshots(source);
  } catch (const std::runtime_error& e) {
    for (AuditOutcome& o : out) {
      o = UnreadableSourceOutcome(e);
    }
    return out;
  }
  ThreadPool* pool = EnsurePool();
  if (pool == nullptr) {
    for (size_t i = 0; i < windows.size(); i++) {
      out[i] =
          SpotCheckImpl(target, source, snaps, windows[i].first, windows[i].second, auths, nullptr);
    }
    return out;
  }
  // One window per worker; within a window the audit runs sequentially
  // (no nested fan-out), since independent replays parallelize far
  // better than the per-signature checks inside one window do.
  pool->ParallelFor(windows.size(), [&](size_t i) {
    out[i] =
        SpotCheckImpl(target, source, snaps, windows[i].first, windows[i].second, auths, nullptr);
  });
  return out;
}

AuditOutcome Auditor::SpotCheckImpl(const Avmm& target, const SegmentSource& source,
                                    std::span<const SnapshotIndexEntry> snaps,
                                    uint64_t from_snapshot_id, uint64_t to_snapshot_id,
                                    std::span<const Authenticator> auths, ThreadPool* pool) {
  const SnapshotIndexEntry* from = nullptr;
  const SnapshotIndexEntry* to = nullptr;
  for (const auto& s : snaps) {
    if (s.meta.snapshot_id == from_snapshot_id) {
      from = &s;
    }
    if (s.meta.snapshot_id == to_snapshot_id) {
      to = &s;
    }
  }
  if (from == nullptr || to == nullptr || from->seq > to->seq) {
    AuditOutcome out;
    out.syntactic = CheckResult::Fail("requested snapshots not found in log");
    return out;
  }

  LogSegment segment;
  try {
    segment = source.Extract(from->seq, to->seq);
  } catch (const std::runtime_error& e) {
    return UnreadableSourceOutcome(e);
  }
  // The auditor asks the machine to commit to the segment's endpoint
  // (the paper's "retrieve a pair of authenticators ... and challenge M
  // to produce the log segment that connects them").
  std::vector<Authenticator> all_auths(auths.begin(), auths.end());
  all_auths.push_back(target.CommitLogAt(to->seq));
  // "Download" the snapshot increments and materialize the start state.
  // Its Merkle root is verified by the replayer against the first
  // kSnapshot entry of the (chain-verified) segment.
  MaterializedState start =
      target.snapshot_store().Materialize(from_snapshot_id, cfg_.mem_size);
  uint64_t snapshot_bytes = target.snapshot_store().TransferBytesUpTo(from_snapshot_id);
  return Run(target, segment, all_auths, ByteView(), &start, snapshot_bytes,
             /*strict_crossref=*/false, pool);
}

}  // namespace avm
