#include "src/audit/auditor.h"

#include <deque>
#include <functional>
#include <map>
#include <sstream>

#include "src/avmm/attested_input.h"
#include "src/avmm/message.h"
#include "src/util/serde.h"
#include "src/vm/trace.h"

namespace avm {

namespace {

// Parses the (MessageRecord, payload_sig) pair stored in SEND/RECV entries.
bool ParseMessageEntry(const LogEntry& e, MessageRecord* msg, Bytes* sig) {
  try {
    Reader r(e.content);
    *msg = MessageRecord::Deserialize(r.Blob());
    *sig = r.Blob();
    r.ExpectEnd();
    return true;
  } catch (const SerdeError&) {
    return false;
  }
}

// Signature verdicts for one segment, indexed by entry position:
// -1 = nothing precomputed (the sequential scan verifies inline),
// 0/1 = the entry's RSA check failed/passed.
using SigVerdicts = std::vector<int8_t>;

// Fans the per-entry RSA verifications — SEND/RECV payload signatures
// and ACK authenticators — across the pool. Only entries that parse and
// pass their node check are precomputed; those are exactly the entries
// whose signatures the sequential scan would reach, so consuming the
// verdicts in order yields an identical result. (For a segment that
// fails earlier for a non-signature reason this does some wasted
// verifications; verdict-changing it is not.)
SigVerdicts PrecomputeSignatureChecks(const LogSegment& segment, const KeyRegistry& registry,
                                      ThreadPool& pool) {
  struct SigJob {
    size_t entry;
    bool is_ack;
    MessageRecord msg;  // Parsed once here; valid when !is_ack.
    Bytes sig;
    Authenticator ack_auth;  // Valid when is_ack.
  };
  SigVerdicts verdicts(segment.entries.size(), -1);
  std::vector<SigJob> jobs;
  for (size_t i = 0; i < segment.entries.size(); i++) {
    const LogEntry& e = segment.entries[i];
    switch (e.type) {
      case EntryType::kSend:
      case EntryType::kRecv: {
        SigJob job{i, false, {}, {}, {}};
        if (ParseMessageEntry(e, &job.msg, &job.sig) &&
            (e.type == EntryType::kSend ? job.msg.src : job.msg.dst) == segment.node) {
          jobs.push_back(std::move(job));
        }
        break;
      }
      case EntryType::kAck: {
        try {
          AckFrame ack = AckFrame::Deserialize(e.content);
          if (ack.orig_src == segment.node) {
            jobs.push_back({i, true, {}, {}, std::move(ack.auth)});
          }
        } catch (const SerdeError&) {
        }
        break;
      }
      default:
        break;
    }
  }
  pool.ParallelFor(jobs.size(), [&](size_t k) {
    const SigJob& job = jobs[k];
    bool ok = job.is_ack ? job.ack_auth.VerifySignature(registry)
                         : registry.Verify(job.msg.src, job.msg.Serialize(), job.sig);
    verdicts[job.entry] = ok ? 1 : 0;
  });
  return verdicts;
}

}  // namespace

CheckResult SyntacticMessageCheck(const LogSegment& segment, const KeyRegistry& registry,
                                  const AuditConfig& cfg, ThreadPool* pool) {
  SigVerdicts precomputed;
  if (pool != nullptr && pool->thread_count() > 1) {
    precomputed = PrecomputeSignatureChecks(segment, registry, *pool);
  }
  // Consults the parallel pre-pass when it ran, else verifies inline.
  auto sig_ok = [&](size_t i, const std::function<bool()>& verify_inline) {
    return i < precomputed.size() && precomputed[i] >= 0 ? precomputed[i] == 1 : verify_inline();
  };
  // RECV payloads waiting to be delivered into the guest (FIFO).
  std::deque<Bytes> recv_queue;
  // Tail (bytes after the 4-byte dst header) of the latest guest TX.
  Bytes current_tx_tail;
  bool have_tx = false;
  // msg_ids this node has sent (for ack pairing).
  std::map<std::pair<NodeId, uint64_t>, bool> sent_ids;

  for (size_t i = 0; i < segment.entries.size(); i++) {
    const LogEntry& e = segment.entries[i];
    switch (e.type) {
      case EntryType::kSend: {
        MessageRecord msg;
        Bytes sig;
        if (!ParseMessageEntry(e, &msg, &sig)) {
          return CheckResult::Fail("malformed SEND entry", e.seq);
        }
        if (msg.src != segment.node) {
          return CheckResult::Fail("SEND entry with foreign source", e.seq);
        }
        if (!sig_ok(i, [&] { return registry.Verify(msg.src, msg.Serialize(), sig); })) {
          return CheckResult::Fail("SEND payload signature invalid", e.seq);
        }
        // Cross-reference: the sent payload must be derived from the most
        // recent packet the guest actually transmitted ([src_idx] + tail).
        if (msg.payload.size() < 4 ||
            (cfg.strict_message_crossref &&
             (!have_tx ||
              !BytesEqual(ByteView(msg.payload).subspan(4), current_tx_tail)))) {
          return CheckResult::Fail("SEND does not correspond to a guest transmission", e.seq);
        }
        sent_ids[{msg.dst, msg.msg_id}] = true;
        break;
      }
      case EntryType::kRecv: {
        MessageRecord msg;
        Bytes sig;
        if (!ParseMessageEntry(e, &msg, &sig)) {
          return CheckResult::Fail("malformed RECV entry", e.seq);
        }
        if (msg.dst != segment.node) {
          return CheckResult::Fail("RECV entry with foreign destination", e.seq);
        }
        if (!sig_ok(i, [&] { return registry.Verify(msg.src, msg.Serialize(), sig); })) {
          return CheckResult::Fail("RECV payload signature invalid", e.seq);
        }
        recv_queue.push_back(msg.payload);
        break;
      }
      case EntryType::kAck: {
        AckFrame ack;
        try {
          ack = AckFrame::Deserialize(e.content);
        } catch (const SerdeError&) {
          return CheckResult::Fail("malformed ACK entry", e.seq);
        }
        if (ack.orig_src != segment.node) {
          return CheckResult::Fail("ACK entry for a foreign message", e.seq);
        }
        if (cfg.strict_message_crossref &&
            sent_ids.find({ack.acker, ack.msg_id}) == sent_ids.end()) {
          return CheckResult::Fail("ACK for a message never sent", e.seq);
        }
        if (!sig_ok(i, [&] { return ack.auth.VerifySignature(registry); })) {
          return CheckResult::Fail("ACK carries an invalid authenticator", e.seq);
        }
        break;
      }
      case EntryType::kTraceTime:
      case EntryType::kTraceMac:
      case EntryType::kTraceOther: {
        TraceEvent ev;
        try {
          ev = TraceEvent::Deserialize(e.content);
        } catch (const SerdeError&) {
          return CheckResult::Fail("malformed trace entry", e.seq);
        }
        if (ClassifyTraceEvent(ev) != e.type) {
          return CheckResult::Fail("trace entry filed under the wrong stream", e.seq);
        }
        if (ev.kind == TraceKind::kOutPacket) {
          if (ev.data.size() < 4) {
            return CheckResult::Fail("guest TX packet shorter than its header", e.seq);
          }
          current_tx_tail.assign(ev.data.begin() + 4, ev.data.end());
          have_tx = true;
        } else if (ev.kind == TraceKind::kDmaPacket) {
          // Every packet delivered into the AVM must be one the machine
          // actually received (in order).
          if (recv_queue.empty()) {
            if (cfg.strict_message_crossref) {
              return CheckResult::Fail("packet delivered into AVM without matching RECV", e.seq);
            }
          } else if (BytesEqual(recv_queue.front(), ev.data)) {
            recv_queue.pop_front();
          } else if (cfg.strict_message_crossref) {
            return CheckResult::Fail("delivered packet differs from received message", e.seq);
          }
        }
        break;
      }
      case EntryType::kSnapshot: {
        try {
          SnapshotMeta::Deserialize(e.content);
        } catch (const SerdeError&) {
          return CheckResult::Fail("malformed snapshot entry", e.seq);
        }
        break;
      }
      case EntryType::kInfo:
        break;
    }
  }
  return CheckResult::Ok();
}

std::vector<SnapshotIndexEntry> IndexSnapshots(const TamperEvidentLog& log) {
  std::vector<SnapshotIndexEntry> out;
  for (const LogEntry& e : log.entries()) {
    if (e.type == EntryType::kSnapshot) {
      out.push_back({e.seq, SnapshotMeta::Deserialize(e.content)});
    }
  }
  return out;
}

std::string AuditOutcome::Describe() const {
  std::ostringstream os;
  if (ok) {
    os << "PASS";
  } else if (!syntactic.ok) {
    os << "FAIL (syntactic): " << syntactic.reason << " at seq " << syntactic.bad_seq;
  } else {
    os << "FAIL (semantic): " << semantic.reason << " at seq " << semantic.diverged_seq;
  }
  return os.str();
}

AuditOutcome Auditor::Run(const Avmm& target, const LogSegment& segment,
                          std::span<const Authenticator> auths, ByteView reference_image,
                          const MaterializedState* start_state, uint64_t snapshot_bytes,
                          bool strict_crossref, ThreadPool* pool) {
  AuditOutcome out;
  out.log_bytes = segment.Serialize().size();
  out.snapshot_bytes = snapshot_bytes;

  WallTimer syn_timer;
  out.syntactic = VerifyAgainstAuthenticators(segment, auths, *registry_, pool);
  if (out.syntactic.ok) {
    AuditConfig cfg = cfg_;
    cfg.strict_message_crossref = strict_crossref;
    out.syntactic = SyntacticMessageCheck(segment, *registry_, cfg, pool);
  }
  if (out.syntactic.ok && cfg_.attested_input) {
    out.syntactic = VerifyAttestedInputs(segment, *registry_);
  }
  out.syntactic_seconds = syn_timer.ElapsedSeconds();

  if (!out.syntactic.ok) {
    Evidence ev;
    ev.kind = EvidenceKind::kProtocolViolation;
    ev.accused = target.id();
    ev.claim = out.syntactic.reason;
    ev.segment = segment.Serialize();
    for (const Authenticator& a : auths) {
      ev.auths.push_back(a.Serialize());
    }
    ev.mem_size = cfg_.mem_size;
    out.evidence = std::move(ev);
    out.ok = false;
    return out;
  }

  WallTimer sem_timer;
  out.semantic = start_state != nullptr
                     ? ReplaySegment(segment, *start_state)
                     : ReplaySegment(segment, reference_image, cfg_.mem_size);
  out.semantic_seconds = sem_timer.ElapsedSeconds();

  out.ok = out.semantic.ok;
  if (!out.ok) {
    Evidence ev;
    ev.kind = EvidenceKind::kReplayDivergence;
    ev.accused = target.id();
    ev.claim = out.semantic.reason;
    ev.segment = segment.Serialize();
    for (const Authenticator& a : auths) {
      ev.auths.push_back(a.Serialize());
    }
    if (start_state != nullptr) {
      // Ship the snapshot increments so a third party can materialize the
      // same (verified) start state.
      const SnapshotStore& store = target.snapshot_store();
      uint64_t start_id = SnapshotMeta::Deserialize(segment.entries.front().content).snapshot_id;
      for (uint64_t id = 0; id <= start_id; id++) {
        ev.snapshot_deltas.push_back(store.Get(id).Serialize());
      }
    }
    ev.mem_size = cfg_.mem_size;
    out.evidence = std::move(ev);
  }
  return out;
}

AuditOutcome Auditor::AuditFull(const Avmm& target, ByteView reference_image,
                                std::span<const Authenticator> auths) {
  LogSegment segment = target.log().Extract(1, target.log().LastSeq());
  return Run(target, segment, auths, reference_image, nullptr, 0, /*strict_crossref=*/true,
             EnsurePool());
}

AuditOutcome Auditor::SpotCheck(const Avmm& target, uint64_t from_snapshot_id,
                                uint64_t to_snapshot_id, std::span<const Authenticator> auths) {
  return SpotCheckImpl(target, from_snapshot_id, to_snapshot_id, auths, EnsurePool());
}

std::vector<AuditOutcome> Auditor::SpotCheckMany(
    const Avmm& target, std::span<const std::pair<uint64_t, uint64_t>> windows,
    std::span<const Authenticator> auths) {
  std::vector<AuditOutcome> out(windows.size());
  ThreadPool* pool = EnsurePool();
  if (pool == nullptr) {
    for (size_t i = 0; i < windows.size(); i++) {
      out[i] = SpotCheckImpl(target, windows[i].first, windows[i].second, auths, nullptr);
    }
    return out;
  }
  // One window per worker; within a window the audit runs sequentially
  // (no nested fan-out), since independent replays parallelize far
  // better than the per-signature checks inside one window do.
  pool->ParallelFor(windows.size(), [&](size_t i) {
    out[i] = SpotCheckImpl(target, windows[i].first, windows[i].second, auths, nullptr);
  });
  return out;
}

AuditOutcome Auditor::SpotCheckImpl(const Avmm& target, uint64_t from_snapshot_id,
                                    uint64_t to_snapshot_id, std::span<const Authenticator> auths,
                                    ThreadPool* pool) {
  std::vector<SnapshotIndexEntry> snaps = IndexSnapshots(target.log());
  const SnapshotIndexEntry* from = nullptr;
  const SnapshotIndexEntry* to = nullptr;
  for (const auto& s : snaps) {
    if (s.meta.snapshot_id == from_snapshot_id) {
      from = &s;
    }
    if (s.meta.snapshot_id == to_snapshot_id) {
      to = &s;
    }
  }
  if (from == nullptr || to == nullptr || from->seq > to->seq) {
    AuditOutcome out;
    out.syntactic = CheckResult::Fail("requested snapshots not found in log");
    return out;
  }

  LogSegment segment = target.log().Extract(from->seq, to->seq);
  // The auditor asks the machine to commit to the segment's endpoint
  // (the paper's "retrieve a pair of authenticators ... and challenge M
  // to produce the log segment that connects them").
  std::vector<Authenticator> all_auths(auths.begin(), auths.end());
  all_auths.push_back(target.CommitLogAt(to->seq));
  // "Download" the snapshot increments and materialize the start state.
  // Its Merkle root is verified by the replayer against the first
  // kSnapshot entry of the (chain-verified) segment.
  MaterializedState start =
      target.snapshot_store().Materialize(from_snapshot_id, cfg_.mem_size);
  uint64_t snapshot_bytes = target.snapshot_store().TransferBytesUpTo(from_snapshot_id);
  return Run(target, segment, all_auths, ByteView(), &start, snapshot_bytes,
             /*strict_crossref=*/false, pool);
}

}  // namespace avm
