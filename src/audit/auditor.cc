#include "src/audit/auditor.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "src/audit/message_check.h"
#include "src/audit/pipeline.h"
#include "src/avmm/attested_input.h"
#include "src/avmm/message.h"
#include "src/obs/trace.h"
#include "src/tel/batch.h"
#include "src/util/serde.h"
#include "src/vm/analysis/cfg.h"
#include "src/vm/analysis/verifier.h"
#include "src/vm/trace.h"

namespace avm {

namespace {

// Joins the worker pool on scope exit: the pipelined Run() submits a
// replay task that captures stack locals by reference, so a throwing
// syntactic phase must not unwind past them while the task runs. The
// moot flag is raised first so the doomed replay stops at its next
// chunk boundary instead of running to completion.
struct PoolJoinGuard {
  ThreadPool* pool;
  std::atomic<bool>* replay_moot = nullptr;
  ~PoolJoinGuard() {
    if (pool != nullptr) {
      if (replay_moot != nullptr) {
        replay_moot->store(true, std::memory_order_relaxed);
      }
      try {
        pool->Wait();
      } catch (...) {
        // Already unwinding; the replay task stores its own exceptions.
      }
    }
  }
};

}  // namespace

CheckResult SyntacticMessageCheck(const LogSegment& segment, const KeyRegistry& registry,
                                  const AuditConfig& cfg, ThreadPool* pool) {
  SigVerdicts precomputed;
  if (pool != nullptr && pool->thread_count() > 1) {
    precomputed = PrecomputeMessageSigVerdicts(segment, registry, *pool);
  }
  MessageCheckState state(segment.node, registry, cfg.strict_message_crossref);
  for (size_t i = 0; i < segment.entries.size(); i++) {
    int8_t verdict = i < precomputed.size() ? precomputed[i] : int8_t{-1};
    CheckResult r = state.Feed(segment.entries[i], verdict);
    if (!r.ok) {
      return r;
    }
  }
  return state.Finalize();
}

CheckResult StreamingSyntacticCheck(const SegmentSource& source,
                                    std::span<const Authenticator> auths,
                                    const KeyRegistry& registry, const AuditConfig& cfg) {
  uint64_t last = source.LastSeq();
  if (last == 0) {
    return CheckResult::Fail("empty segment");
  }
  // Authenticators that cover the log, keyed by seq; mirrors
  // VerifyAgainstAuthenticators' coverage requirement.
  std::multimap<uint64_t, const Authenticator*> by_seq;
  for (const Authenticator& a : auths) {
    if (a.node == source.node() && a.seq >= 1 && a.seq <= last) {
      by_seq.emplace(a.seq, &a);
    }
  }
  if (by_seq.empty()) {
    return CheckResult::Fail("no authenticator covers the segment; cannot establish authenticity");
  }
  MessageCheckState state(source.node(), registry, cfg.strict_message_crossref);
  Hash256 prev = Hash256::Zero();
  uint64_t expect_seq = 1;
  CheckResult result = CheckResult::Ok();
  try {
    source.Scan(1, last, [&](const LogEntry& e) {
      CheckResult link = CheckChainLink(prev, expect_seq, e);
      if (!link.ok) {
        result = link;
        return false;
      }
      auto [first, end] = by_seq.equal_range(e.seq);
      for (auto it = first; it != end; ++it) {
        if (!it->second->VerifySignature(registry)) {
          result = CheckResult::Fail("authenticator signature invalid", e.seq);
          return false;
        }
        if (e.hash != it->second->hash) {
          result =
              CheckResult::Fail("log does not match issued authenticator (tamper or fork)", e.seq);
          return false;
        }
      }
      CheckResult r = state.Feed(e, -1);
      if (!r.ok) {
        result = r;
        return false;
      }
      prev = e.hash;
      expect_seq++;
      return true;
    });
  } catch (const std::runtime_error& err) {
    // Store-layer corruption (CRC mismatch, truncated segment, ...): the
    // log cannot be verified past this point.
    return CheckResult::Fail(std::string("log store unreadable: ") + err.what(), expect_seq);
  }
  if (result.ok) {
    result = state.Finalize();
  }
  return result;
}

std::vector<SnapshotIndexEntry> IndexSnapshots(const TamperEvidentLog& log) {
  std::vector<SnapshotIndexEntry> out;
  for (const LogEntry& e : log.entries()) {
    if (e.type == EntryType::kSnapshot) {
      out.push_back({e.seq, SnapshotMeta::Deserialize(e.content)});
    }
  }
  return out;
}

std::vector<SnapshotIndexEntry> IndexSnapshots(const SegmentSource& source) {
  std::vector<SnapshotIndexEntry> out;
  if (source.LastSeq() == 0) {
    return out;
  }
  source.Scan(1, source.LastSeq(), [&](const LogEntry& e) {
    if (e.type == EntryType::kSnapshot) {
      out.push_back({e.seq, SnapshotMeta::Deserialize(e.content)});
    }
    return true;
  });
  return out;
}

std::string AuditOutcome::Describe() const {
  std::ostringstream os;
  if (ok) {
    os << "PASS";
    if (image_warnings > 0) {
      os << " (" << image_warnings << " image warning" << (image_warnings == 1 ? "" : "s") << ")";
    }
  } else if (image_errors > 0) {
    os << "FAIL (image): " << image_errors << " verifier error"
       << (image_errors == 1 ? "" : "s") << " in the reference image";
    if (!image_findings.empty()) {
      os << "; first: " << image_findings.front();
    }
  } else if (!syntactic.ok) {
    os << "FAIL (syntactic): " << syntactic.reason << " at seq " << syntactic.bad_seq;
  } else {
    os << "FAIL (semantic): " << semantic.reason << " at seq " << semantic.diverged_seq;
  }
  return os.str();
}

AuditOutcome Auditor::Run(const Avmm& target, const LogSegment& segment,
                          std::span<const Authenticator> auths, ByteView reference_image,
                          const MaterializedState* start_state, uint64_t snapshot_bytes,
                          bool strict_crossref, ThreadPool* pool) {
  AuditOutcome out;
  out.log_bytes = segment.Serialize().size();
  out.snapshot_bytes = snapshot_bytes;

  // Pipelined mode: replay the segment on a worker while this thread
  // runs the message-stream check, instead of strictly after it. Replay
  // only starts once the chain + authenticators verified — a forged
  // segment is still rejected for the price of a hash pass and a few
  // RSA checks, never a (attacker-sized) replay; what overlaps is the
  // expensive per-message RSA scan. The verdict assembly below is
  // order-identical to the sequential phases: a syntactic failure
  // discards the replay result (and any replay exception a hostile
  // segment provoked — sequentially the replay would never have run).
  ReplayResult pipelined_replay;
  std::exception_ptr pipelined_replay_err;
  double pipelined_sem_seconds = 0;
  const bool pipelined = pool != nullptr && cfg_.pipelined;
  bool replay_submitted = false;
  // Set once the syntactic verdict is a failure: the replay result is
  // discarded in that case, so the task stops feeding at its next chunk
  // boundary instead of replaying the rest for nothing.
  std::atomic<bool> replay_moot{false};
  PoolJoinGuard join_guard{pipelined ? pool : nullptr, &replay_moot};

  WallTimer syn_timer;
  obs::Span syn_span(obs::kPhaseAuditSyntactic, "audit");
  {
    obs::Span rsa_span(obs::kPhaseAuditRsaVerify, "audit");
    out.syntactic = VerifyAgainstAuthenticators(segment, auths, *registry_, pool);
  }
  if (out.syntactic.ok) {
    if (pipelined) {
      replay_submitted = true;
      pool->Submit([&] {
        WallTimer sem_timer;
        obs::Span replay_span(obs::kPhaseAuditReplay, "audit");
        try {
          // In-place construction: the replayer registers itself as the
          // machine's device backend, so it must never move.
          std::optional<StreamingReplayer> replayer;
          if (start_state != nullptr) {
            replayer.emplace(*start_state);
          } else {
            replayer.emplace(reference_image, cfg_.mem_size);
          }
          replayer->mutable_machine().set_jit_enabled(cfg_.jit_replay);
          constexpr size_t kReplayChunk = 4096;
          std::span<const LogEntry> entries(segment.entries);
          size_t pos = 0;
          while (pos < entries.size() && !replay_moot.load(std::memory_order_relaxed)) {
            const size_t n = std::min(kReplayChunk, entries.size() - pos);
            replayer->Feed(entries.subspan(pos, n));
            pos += n;
          }
          if (!replay_moot.load(std::memory_order_relaxed)) {
            pipelined_replay = replayer->Finish();
          }
        } catch (...) {
          pipelined_replay_err = std::current_exception();
        }
        pipelined_sem_seconds = sem_timer.ElapsedSeconds();
      });
    }
    AuditConfig cfg = cfg_;
    cfg.strict_message_crossref = strict_crossref;
    out.syntactic = SyntacticMessageCheck(segment, *registry_, cfg, pool);
  }
  if (out.syntactic.ok && cfg_.attested_input) {
    out.syntactic = VerifyAttestedInputs(segment, *registry_);
  }
  out.syntactic_seconds = syn_timer.ElapsedSeconds();
  syn_span.End();
  if (!out.syntactic.ok) {
    replay_moot.store(true, std::memory_order_relaxed);
  }
  if (replay_submitted) {
    pool->Wait();
  }

  if (!out.syntactic.ok) {
    Evidence ev;
    ev.kind = EvidenceKind::kProtocolViolation;
    ev.accused = target.id();
    ev.claim = out.syntactic.reason;
    ev.segment = segment.Serialize();
    for (const Authenticator& a : auths) {
      ev.auths.push_back(a.Serialize());
    }
    ev.mem_size = cfg_.mem_size;
    out.evidence = std::move(ev);
    out.ok = false;
    return out;
  }

  if (replay_submitted) {
    if (pipelined_replay_err != nullptr) {
      std::rethrow_exception(pipelined_replay_err);
    }
    out.semantic = pipelined_replay;
    out.semantic_seconds = pipelined_sem_seconds;
  } else {
    WallTimer sem_timer;
    obs::Span replay_span(obs::kPhaseAuditReplay, "audit");
    out.semantic = start_state != nullptr
                       ? ReplaySegment(segment, *start_state)
                       : ReplaySegment(segment, reference_image, cfg_.mem_size);
    out.semantic_seconds = sem_timer.ElapsedSeconds();
  }

  out.ok = out.semantic.ok;
  if (!out.ok) {
    Evidence ev;
    ev.kind = EvidenceKind::kReplayDivergence;
    ev.accused = target.id();
    ev.claim = out.semantic.reason;
    ev.segment = segment.Serialize();
    for (const Authenticator& a : auths) {
      ev.auths.push_back(a.Serialize());
    }
    if (start_state != nullptr) {
      // Ship the snapshot increments so a third party can materialize the
      // same (verified) start state.
      const SnapshotStore& store = target.snapshot_store();
      uint64_t start_id = SnapshotMeta::Deserialize(segment.entries.front().content).snapshot_id;
      for (uint64_t id = 0; id <= start_id; id++) {
        ev.snapshot_deltas.push_back(store.Get(id).Serialize());
      }
    }
    ev.mem_size = cfg_.mem_size;
    out.evidence = std::move(ev);
  }
  return out;
}

AuditOutcome Auditor::AuditFull(const Avmm& target, ByteView reference_image,
                                std::span<const Authenticator> auths) {
  return AuditFull(target, InMemorySegmentSource(target.log()), reference_image, auths);
}

namespace {

// An audit source is untrusted input: a corrupt or truncated store
// (CRC mismatch, torn segment, garbage snapshot entry) must fail the
// audit, not escape as an exception. Range errors (std::out_of_range,
// a logic_error) still propagate, matching the in-memory contract.
AuditOutcome UnreadableSourceOutcome(const std::runtime_error& e) {
  AuditOutcome out;
  out.syntactic = CheckResult::Fail(std::string("log source unreadable: ") + e.what());
  return out;
}

// AuditConfig::verify_image: run the static image verifier (CFG
// recovery + src/vm/analysis checks) over the reference image and
// render the findings to strings, so AuditOutcome stays decoupled from
// the analysis types.
void VerifyReferenceImage(ByteView image, size_t mem_size, AuditOutcome* out) {
  const analysis::Cfg cfg = analysis::BuildCfg(image);
  const analysis::VerifyReport rep = analysis::VerifyImage(image, mem_size, cfg);
  out->image_errors = rep.errors;
  out->image_warnings = rep.warnings;
  out->image_findings.reserve(rep.findings.size());
  for (const analysis::Finding& f : rep.findings) {
    std::ostringstream os;
    os << (f.severity == analysis::Severity::kError ? "error" : "warning") << ": "
       << analysis::FindingKindName(f.kind) << " at 0x" << std::hex << f.addr;
    if (!f.detail.empty()) {
      os << std::dec << ": " << f.detail;
    }
    out->image_findings.push_back(os.str());
  }
}

}  // namespace

std::optional<AuditOutcome> DetectLogRewind(const Avmm& target, const SegmentSource& source,
                                            std::span<const Authenticator> auths,
                                            const KeyRegistry& registry, size_t mem_size) {
  const uint64_t served_last = source.LastSeq();
  for (const Authenticator& a : auths) {
    if (a.node == source.node() && a.seq > served_last && a.VerifySignature(registry)) {
      AuditOutcome out;
      out.syntactic =
          CheckResult::Fail("log rewound: authenticator commits seq " + std::to_string(a.seq) +
                                " but the served log ends at " + std::to_string(served_last),
                            a.seq);
      Evidence ev;
      ev.kind = EvidenceKind::kProtocolViolation;
      ev.accused = target.id();
      ev.claim = out.syntactic.reason;
      ev.auths.push_back(a.Serialize());
      ev.mem_size = mem_size;
      out.evidence = std::move(ev);
      return out;
    }
  }
  return std::nullopt;
}

AuditOutcome Auditor::AuditFull(const Avmm& target, const SegmentSource& source,
                                ByteView reference_image, std::span<const Authenticator> auths) {
  AuditOutcome image_check;
  if (cfg_.verify_image) {
    VerifyReferenceImage(reference_image, cfg_.mem_size, &image_check);
    if (image_check.image_errors > 0) {
      // A reference image the verifier rejects (illegal opcodes on a
      // reachable path, jumps out of the image, statically
      // out-of-bounds accesses) makes any replay verdict meaningless:
      // fail up front without replaying an instruction. Note this
      // accuses the auditor's own inputs, not the auditee — no
      // evidence is attached.
      return image_check;
    }
  }
  // Warnings (and the findings list) ride along on whichever outcome
  // the audit proper produces.
  auto attach = [&image_check](AuditOutcome out) {
    out.image_findings = std::move(image_check.image_findings);
    out.image_warnings = image_check.image_warnings;
    return out;
  };
  if (auto rewound = DetectLogRewind(target, source, auths, *registry_, cfg_.mem_size)) {
    return attach(*std::move(rewound));
  }
  ThreadPool* pool = EnsurePool();
  if (pool != nullptr && cfg_.pipelined && source.LastSeq() >= 1) {
    // Streaming pipeline: the syntactic check of chunk i+1 overlaps the
    // replay of chunk i, and only O(chunk) entries are materialized at
    // a time. Verdicts are bit-for-bit the sequential path's.
    AuditConfig cfg = cfg_;
    cfg.strict_message_crossref = true;
    return attach(PipelinedStreamingAuditFull(target, source, reference_image, auths, *registry_,
                                              cfg, *pool));
  }
  LogSegment segment;
  try {
    segment = source.Extract(1, source.LastSeq());
  } catch (const std::runtime_error& e) {
    return attach(UnreadableSourceOutcome(e));
  }
  return attach(
      Run(target, segment, auths, reference_image, nullptr, 0, /*strict_crossref=*/true, pool));
}

AuditOutcome Auditor::SpotCheck(const Avmm& target, uint64_t from_snapshot_id,
                                uint64_t to_snapshot_id, std::span<const Authenticator> auths) {
  InMemorySegmentSource source(target.log());
  return SpotCheck(target, source, from_snapshot_id, to_snapshot_id, auths);
}

AuditOutcome Auditor::SpotCheck(const Avmm& target, const SegmentSource& source,
                                uint64_t from_snapshot_id, uint64_t to_snapshot_id,
                                std::span<const Authenticator> auths) {
  std::vector<SnapshotIndexEntry> snaps;
  try {
    snaps = IndexSnapshots(source);
  } catch (const std::runtime_error& e) {
    return UnreadableSourceOutcome(e);
  }
  return SpotCheckImpl(target, source, snaps, from_snapshot_id, to_snapshot_id, auths,
                       EnsurePool());
}

std::vector<AuditOutcome> Auditor::SpotCheckMany(
    const Avmm& target, std::span<const std::pair<uint64_t, uint64_t>> windows,
    std::span<const Authenticator> auths) {
  return SpotCheckMany(target, InMemorySegmentSource(target.log()), windows, auths);
}

std::vector<AuditOutcome> Auditor::SpotCheckMany(
    const Avmm& target, const SegmentSource& source,
    std::span<const std::pair<uint64_t, uint64_t>> windows,
    std::span<const Authenticator> auths) {
  std::vector<AuditOutcome> out(windows.size());
  // One snapshot-index scan for all windows: for a store-backed source
  // the scan reads every segment from disk.
  std::vector<SnapshotIndexEntry> snaps;
  try {
    snaps = IndexSnapshots(source);
  } catch (const std::runtime_error& e) {
    for (AuditOutcome& o : out) {
      o = UnreadableSourceOutcome(e);
    }
    return out;
  }
  ThreadPool* pool = EnsurePool();
  if (pool == nullptr) {
    for (size_t i = 0; i < windows.size(); i++) {
      out[i] =
          SpotCheckImpl(target, source, snaps, windows[i].first, windows[i].second, auths, nullptr);
    }
    return out;
  }
  // One window per worker; within a window the audit runs sequentially
  // (no nested fan-out), since independent replays parallelize far
  // better than the per-signature checks inside one window do.
  pool->ParallelFor(windows.size(), [&](size_t i) {
    out[i] =
        SpotCheckImpl(target, source, snaps, windows[i].first, windows[i].second, auths, nullptr);
  });
  return out;
}

AuditOutcome Auditor::SpotCheckImpl(const Avmm& target, const SegmentSource& source,
                                    std::span<const SnapshotIndexEntry> snaps,
                                    uint64_t from_snapshot_id, uint64_t to_snapshot_id,
                                    std::span<const Authenticator> auths, ThreadPool* pool) {
  const SnapshotIndexEntry* from = nullptr;
  const SnapshotIndexEntry* to = nullptr;
  for (const auto& s : snaps) {
    if (s.meta.snapshot_id == from_snapshot_id) {
      from = &s;
    }
    if (s.meta.snapshot_id == to_snapshot_id) {
      to = &s;
    }
  }
  if (from == nullptr || to == nullptr || from->seq > to->seq) {
    AuditOutcome out;
    out.syntactic = CheckResult::Fail("requested snapshots not found in log");
    return out;
  }

  LogSegment segment;
  try {
    segment = source.Extract(from->seq, to->seq);
  } catch (const std::runtime_error& e) {
    return UnreadableSourceOutcome(e);
  }
  // The auditor asks the machine to commit to the segment's endpoint
  // (the paper's "retrieve a pair of authenticators ... and challenge M
  // to produce the log segment that connects them").
  std::vector<Authenticator> all_auths(auths.begin(), auths.end());
  all_auths.push_back(target.CommitLogAt(to->seq));
  // "Download" the snapshot increments and materialize the start state.
  // Its Merkle root is verified by the replayer against the first
  // kSnapshot entry of the (chain-verified) segment.
  MaterializedState start =
      target.snapshot_store().Materialize(from_snapshot_id, cfg_.mem_size);
  uint64_t snapshot_bytes = target.snapshot_store().TransferBytesUpTo(from_snapshot_id);
  return Run(target, segment, all_auths, ByteView(), &start, snapshot_bytes,
             /*strict_crossref=*/false, pool);
}

}  // namespace avm
