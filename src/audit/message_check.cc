#include "src/audit/message_check.h"

#include <algorithm>
#include <functional>

#include "src/avmm/snapshot.h"
#include "src/tel/batch.h"
#include "src/util/serde.h"
#include "src/util/threadpool.h"
#include "src/vm/trace.h"

namespace avm {

SigVerdicts PrecomputeMessageSigVerdicts(const LogSegment& segment, const KeyRegistry& registry,
                                         ThreadPool& pool) {
  struct SigJob {
    size_t entry;
    bool is_ack;
    MessageRecord msg;  // Parsed once here; valid when !is_ack.
    Bytes sig;
    Authenticator ack_auth;  // Valid when is_ack.
  };
  SigVerdicts verdicts(segment.entries.size(), -1);
  std::vector<SigJob> jobs;
  for (size_t i = 0; i < segment.entries.size(); i++) {
    const LogEntry& e = segment.entries[i];
    switch (e.type) {
      case EntryType::kSend:
      case EntryType::kRecv: {
        SigJob job{i, false, {}, {}, {}};
        if (ParseMessageEntry(e, &job.msg, &job.sig) &&
            (e.type == EntryType::kSend ? job.msg.src : job.msg.dst) == segment.node) {
          jobs.push_back(std::move(job));
        }
        break;
      }
      case EntryType::kAck: {
        try {
          AckFrame ack = AckFrame::Deserialize(e.content);
          if (ack.orig_src == segment.node) {
            jobs.push_back({i, true, {}, {}, std::move(ack.auth)});
          }
        } catch (const SerdeError&) {
        }
        break;
      }
      default:
        break;
    }
  }
  // Signature-less entries (batched/async sign modes) are resolved
  // against PeerCommitRecords by the sequential scan, not by an RSA
  // check here; leave their verdicts at -1.
  std::erase_if(jobs, [](const SigJob& job) {
    return job.is_ack ? job.ack_auth.signature.empty() : job.sig.empty();
  });
  pool.ParallelFor(jobs.size(), [&](size_t k) {
    const SigJob& job = jobs[k];
    bool ok = job.is_ack ? job.ack_auth.VerifySignature(registry)
                         : registry.Verify(job.msg.src, job.msg.Serialize(), job.sig);
    verdicts[job.entry] = ok ? 1 : 0;
  });
  return verdicts;
}

bool ParseMessageEntry(const LogEntry& e, MessageRecord* msg, Bytes* sig) {
  try {
    Reader r(e.content);
    *msg = MessageRecord::Deserialize(r.Blob());
    *sig = r.Blob();
    r.ExpectEnd();
    return true;
  } catch (const SerdeError&) {
    return false;
  }
}

CheckResult MessageCheckState::Feed(const LogEntry& e, int8_t sig_verdict) {
  auto sig_ok = [&](const std::function<bool()>& verify_inline) {
    return sig_verdict >= 0 ? sig_verdict == 1 : verify_inline();
  };
  switch (e.type) {
    case EntryType::kSend: {
      MessageRecord msg;
      Bytes sig;
      if (!ParseMessageEntry(e, &msg, &sig)) {
        return CheckResult::Fail("malformed SEND entry", e.seq);
      }
      if (msg.src != node_) {
        return CheckResult::Fail("SEND entry with foreign source", e.seq);
      }
      if (sig.empty() && registry_.RequiresSignature(msg.src)) {
        // Batched mode: our own SEND needs no per-message signature —
        // the hash chain plus this node's windowed authenticators
        // commit it, and that is what the segment was verified against.
      } else if (!sig_ok([&] { return registry_.Verify(msg.src, msg.Serialize(), sig); })) {
        return CheckResult::Fail("SEND payload signature invalid", e.seq);
      }
      // Cross-reference: the sent payload must be derived from the most
      // recent packet the guest actually transmitted ([src_idx] + tail).
      if (msg.payload.size() < 4 ||
          (strict_ && (!have_tx_ || !BytesEqual(ByteView(msg.payload).subspan(4), current_tx_tail_)))) {
        return CheckResult::Fail("SEND does not correspond to a guest transmission", e.seq);
      }
      sent_ids_[{msg.dst, msg.msg_id}] = true;
      break;
    }
    case EntryType::kRecv: {
      MessageRecord msg;
      Bytes sig;
      if (!ParseMessageEntry(e, &msg, &sig)) {
        return CheckResult::Fail("malformed RECV entry", e.seq);
      }
      if (msg.dst != node_) {
        return CheckResult::Fail("RECV entry with foreign destination", e.seq);
      }
      if (sig.empty() && registry_.RequiresSignature(msg.src)) {
        // Batched mode: authenticity comes from the sender's signed
        // chain containing SEND with this very content (sender and
        // receiver log identical content bytes).
        Hash256 ch = Sha256::Digest(e.content);
        PeerProof& proof = peer_proofs_[msg.src];
        if (proof.send_contents.count(ch) == 0) {
          pending_recvs_.push_back({e.seq, msg.src, ch});
        }
      } else if (!sig_ok([&] { return registry_.Verify(msg.src, msg.Serialize(), sig); })) {
        return CheckResult::Fail("RECV payload signature invalid", e.seq);
      }
      recv_queue_.push_back(msg.payload);
      break;
    }
    case EntryType::kAck: {
      AckFrame ack;
      try {
        ack = AckFrame::Deserialize(e.content);
      } catch (const SerdeError&) {
        return CheckResult::Fail("malformed ACK entry", e.seq);
      }
      if (ack.orig_src != node_) {
        return CheckResult::Fail("ACK entry for a foreign message", e.seq);
      }
      if (strict_ && sent_ids_.find({ack.acker, ack.msg_id}) == sent_ids_.end()) {
        return CheckResult::Fail("ACK for a message never sent", e.seq);
      }
      if (ack.auth.signature.empty() && registry_.RequiresSignature(ack.auth.node)) {
        // Batched mode: the acker's windowed commitment must cover
        // (seq, hash) of its RECV entry.
        if (ack.auth.node != ack.acker) {
          return CheckResult::Fail("ACK authenticator names a third party", e.seq);
        }
        PeerProof& proof = peer_proofs_[ack.auth.node];
        auto it = proof.chain.find(ack.auth.seq);
        if (it == proof.chain.end() || it->second != ack.auth.hash) {
          pending_acks_.push_back({e.seq, ack.auth});
        }
      } else if (!sig_ok([&] { return ack.auth.VerifySignature(registry_); })) {
        return CheckResult::Fail("ACK carries an invalid authenticator", e.seq);
      }
      break;
    }
    case EntryType::kTraceTime:
    case EntryType::kTraceMac:
    case EntryType::kTraceOther: {
      TraceEvent ev;
      try {
        ev = TraceEvent::Deserialize(e.content);
      } catch (const SerdeError&) {
        return CheckResult::Fail("malformed trace entry", e.seq);
      }
      if (ClassifyTraceEvent(ev) != e.type) {
        return CheckResult::Fail("trace entry filed under the wrong stream", e.seq);
      }
      if (ev.kind == TraceKind::kOutPacket) {
        if (ev.data.size() < 4) {
          return CheckResult::Fail("guest TX packet shorter than its header", e.seq);
        }
        current_tx_tail_.assign(ev.data.begin() + 4, ev.data.end());
        have_tx_ = true;
      } else if (ev.kind == TraceKind::kDmaPacket) {
        // Every packet delivered into the AVM must be one the machine
        // actually received (in order).
        if (recv_queue_.empty()) {
          if (strict_) {
            return CheckResult::Fail("packet delivered into AVM without matching RECV", e.seq);
          }
        } else if (BytesEqual(recv_queue_.front(), ev.data)) {
          recv_queue_.pop_front();
        } else if (strict_) {
          return CheckResult::Fail("delivered packet differs from received message", e.seq);
        }
      }
      break;
    }
    case EntryType::kSnapshot: {
      try {
        SnapshotMeta::Deserialize(e.content);
      } catch (const SerdeError&) {
        return CheckResult::Fail("malformed snapshot entry", e.seq);
      }
      break;
    }
    case EntryType::kInfo:
      if (PeerCommitRecord::IsPeerCommit(e.content)) {
        return FeedPeerCommit(e);
      }
      break;
  }
  return CheckResult::Ok();
}

CheckResult MessageCheckState::Finalize() const {
  if (!strict_) {
    // Spot-check windows can end mid-window; the commitment proving
    // their tail lives outside the segment, so pending entries are
    // tolerated here. The audit cannot know the log's sign mode, so
    // this leniency extends to signature-less entries a sync-mode
    // cheater might plant -- consistent with the window's other
    // relaxations (ack pairing, mid-queue crossref), spot checks
    // trade that coverage for cost; the strict full audit is the
    // authoritative verdict and fails any unproven entry.
    return CheckResult::Ok();
  }
  uint64_t first_bad = UINT64_MAX;
  for (const PendingRecv& p : pending_recvs_) {
    first_bad = std::min(first_bad, p.seq);
  }
  for (const PendingAck& p : pending_acks_) {
    first_bad = std::min(first_bad, p.seq);
  }
  if (first_bad != UINT64_MAX) {
    return CheckResult::Fail("entry not covered by the peer's signed batch commitment", first_bad);
  }
  return CheckResult::Ok();
}

void MessageCheckState::SerializeState(Writer& w) const {
  w.U32(static_cast<uint32_t>(recv_queue_.size()));
  for (const Bytes& b : recv_queue_) {
    w.Blob(b);
  }
  w.Blob(current_tx_tail_);
  w.U8(have_tx_ ? 1 : 0);
  w.U32(static_cast<uint32_t>(sent_ids_.size()));
  for (const auto& [key, acked] : sent_ids_) {
    w.Str(key.first);
    w.U64(key.second);
    w.U8(acked ? 1 : 0);
  }
  w.U32(static_cast<uint32_t>(peer_proofs_.size()));
  for (const auto& [peer, proof] : peer_proofs_) {
    w.Str(peer);
    w.U8(proof.seen ? 1 : 0);
    w.U64(proof.commit_seq);
    w.Raw(proof.commit_hash.view());
    w.U32(static_cast<uint32_t>(proof.send_contents.size()));
    for (const Hash256& h : proof.send_contents) {
      w.Raw(h.view());
    }
    w.U32(static_cast<uint32_t>(proof.chain.size()));
    for (const auto& [seq, h] : proof.chain) {
      w.U64(seq);
      w.Raw(h.view());
    }
  }
  w.U32(static_cast<uint32_t>(pending_recvs_.size()));
  for (const PendingRecv& p : pending_recvs_) {
    w.U64(p.seq);
    w.Str(p.src);
    w.Raw(p.content_hash.view());
  }
  w.U32(static_cast<uint32_t>(pending_acks_.size()));
  for (const PendingAck& p : pending_acks_) {
    w.U64(p.seq);
    w.Blob(p.auth.Serialize());
  }
}

void MessageCheckState::RestoreState(Reader& r) {
  recv_queue_.clear();
  sent_ids_.clear();
  peer_proofs_.clear();
  pending_recvs_.clear();
  pending_acks_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    recv_queue_.push_back(r.Blob());
  }
  current_tx_tail_ = r.Blob();
  have_tx_ = r.U8() != 0;
  n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    NodeId dst = r.Str();
    uint64_t msg_id = r.U64();
    bool acked = r.U8() != 0;
    sent_ids_[{std::move(dst), msg_id}] = acked;
  }
  n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    NodeId peer = r.Str();
    PeerProof proof;
    proof.seen = r.U8() != 0;
    proof.commit_seq = r.U64();
    proof.commit_hash = Hash256::FromBytes(r.Raw(32));
    uint32_t m = r.U32();
    for (uint32_t j = 0; j < m; j++) {
      proof.send_contents.insert(Hash256::FromBytes(r.Raw(32)));
    }
    m = r.U32();
    for (uint32_t j = 0; j < m; j++) {
      uint64_t seq = r.U64();
      proof.chain[seq] = Hash256::FromBytes(r.Raw(32));
    }
    peer_proofs_[std::move(peer)] = std::move(proof);
  }
  n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    PendingRecv p;
    p.seq = r.U64();
    p.src = r.Str();
    p.content_hash = Hash256::FromBytes(r.Raw(32));
    pending_recvs_.push_back(std::move(p));
  }
  n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    PendingAck p;
    p.seq = r.U64();
    Bytes auth = r.Blob();
    p.auth = Authenticator::Deserialize(auth);
    pending_acks_.push_back(std::move(p));
  }
}

CheckResult MessageCheckState::FeedPeerCommit(const LogEntry& e) {
  PeerCommitRecord rec;
  try {
    rec = PeerCommitRecord::Deserialize(e.content);
  } catch (const SerdeError&) {
    return CheckResult::Fail("malformed peer-commit entry", e.seq);
  }
  if (rec.batch.commit.node != rec.peer) {
    return CheckResult::Fail("peer-commit names the wrong node", e.seq);
  }
  PeerProof& proof = peer_proofs_[rec.peer];
  if (proof.seen) {
    // Each record extends the previous one: the walk start must be the
    // last commitment, so the proofs form one connected chain.
    if (rec.batch.prior_seq != proof.commit_seq || rec.batch.prior_hash != proof.commit_hash) {
      return CheckResult::Fail("peer-commit does not extend the previous commitment", e.seq);
    }
  } else if (strict_ && (rec.batch.prior_seq != 0 || !rec.batch.prior_hash.IsZero())) {
    // A full log's first proof for a peer must anchor at the peer's
    // log head; spot-check windows may start mid-history.
    return CheckResult::Fail("peer-commit does not anchor at the peer's log head", e.seq);
  }
  CheckResult ok = rec.batch.Verify(registry_);  // Walk + one RSA check.
  if (!ok.ok) {
    return CheckResult::Fail("peer-commit invalid: " + ok.reason, e.seq);
  }
  Hash256 h = rec.batch.prior_hash;
  for (const ChainLink& l : rec.batch.links) {
    h = ApplyChainLink(h, l);
    proof.chain[l.seq] = h;
    if (l.type == EntryType::kSend) {
      proof.send_contents.insert(l.content_hash);
    }
  }
  proof.seen = true;
  proof.commit_seq = rec.batch.commit.seq;
  proof.commit_hash = rec.batch.commit.hash;

  // Resolve anything this window proves (proof may arrive before or
  // after the entry it covers; both orders are legitimate).
  std::erase_if(pending_recvs_, [&](const PendingRecv& p) {
    return p.src == rec.peer && proof.send_contents.count(p.content_hash) > 0;
  });
  std::erase_if(pending_acks_, [&](const PendingAck& p) {
    if (p.auth.node != rec.peer) {
      return false;
    }
    auto it = proof.chain.find(p.auth.seq);
    return it != proof.chain.end() && it->second == p.auth.hash;
  });
  return CheckResult::Ok();
}

}  // namespace avm
