// The multi-tenant audit service (§6.11, §8): one auditor responsible
// for a fleet of accountable machines.
//
// FleetAuditService registers N auditee logs (any SegmentSource — a
// live in-memory log or a store::LogStore opened from disk) and shards
// full-audit / spot-check / online-poll jobs across its worker threads
// with per-auditee fairness and priorities:
//
//  * at most one job per auditee runs at a time (jobs share the
//    auditee's checkpoint file and online-replay session);
//  * among runnable auditees, the highest-priority queued job wins;
//    ties go to the least-recently-served auditee (round robin), so a
//    chatty auditee cannot starve the rest;
//  * full audits run through CheckpointedAuditor: each one resumes
//    from the auditee's persisted checkpoint (src/audit/checkpoint)
//    and refreshes it, so re-auditing a long-lived machine costs
//    O(new entries), not O(total log);
//  * online polls keep a persistent OnlineAuditor per auditee (the
//    §6.11 lag metric), surfacing a target-log rewind as its own
//    status instead of stale progress.
//
// Verdicts are those of the single-auditee entry points, bit for bit:
// sharding, priorities and checkpoints change only wall-clock time.
//
// Telemetry: the service's counters live in the process-wide obs
// registry (labeled {svc=<instance serial>}); FleetStats and stats()
// remain as a compatibility view read back from those counters. The
// scheduler additionally records per-job-type queue-wait and service
// -time histograms and a per-node online-lag gauge (§6.11), and the
// Export* methods write the Prometheus / JSON / Chrome-trace artifacts
// a fleet operator scrapes.
#ifndef SRC_AUDIT_FLEET_H_
#define SRC_AUDIT_FLEET_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/auditor.h"
#include "src/audit/checkpoint.h"
#include "src/audit/online.h"
#include "src/obs/metrics.h"

namespace avm {

enum class FleetJobType : uint8_t { kFullAudit = 0, kSpotCheck = 1, kOnlinePoll = 2 };
enum class FleetPriority : uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

const char* FleetJobTypeName(FleetJobType t);

struct FleetAuditConfig {
  // Service worker threads (0 = one per hardware thread). Sharding
  // whole jobs across workers is the scaling axis; within one job the
  // audit runs with `audit.threads` (defaulted to 1 here, so a fleet
  // does not multiply thread counts unless explicitly asked to).
  unsigned workers = 2;
  AuditConfig audit;
  CheckpointConfig checkpoint;
  // Resume full audits from (and refresh) per-auditee checkpoints when
  // the registration names a checkpoint directory.
  bool resume_from_checkpoints = true;
  // Start with the scheduler paused: jobs queue but none runs until
  // Resume(). Lets a caller submit a whole batch and observe the
  // fairness policy deterministically (tests do).
  bool start_paused = false;
};

struct FleetJobResult {
  uint64_t job_id = 0;
  NodeId node;  // Registration key (unique across the fleet).
  FleetJobType type = FleetJobType::kFullAudit;
  FleetPriority priority = FleetPriority::kNormal;

  // Full audits and spot checks.
  AuditOutcome outcome;
  ResumeInfo resume;

  // Online polls (replay-only, like OnlineAuditor).
  ReplayResult online;
  OnlinePollStatus online_status = OnlinePollStatus::kIdle;
  uint64_t online_lag_entries = 0;

  double seconds = 0;
  // Global completion order (0-based): what the fairness tests assert.
  uint64_t completion_index = 0;
};

struct FleetStats {
  uint64_t jobs_completed = 0;
  uint64_t full_audits = 0;
  uint64_t spot_checks = 0;
  uint64_t online_polls = 0;
  uint64_t audits_resumed = 0;       // Full audits that resumed from a checkpoint.
  uint64_t audits_cold = 0;          // Full audits from genesis.
  uint64_t checkpoints_written = 0;
  uint64_t checkpoints_rejected = 0; // Invalid/forged/stale checkpoint files.
  uint64_t entries_scanned = 0;      // Entries actually read + verified.
  uint64_t entries_skipped = 0;      // Entries behind accepted checkpoints.
  uint64_t faults_detected = 0;      // Failed audits + online divergences.
  uint64_t targets_rewound = 0;      // Online polls that saw the log shrink.
};

class FleetAuditService {
 public:
  struct Registration {
    NodeId node;                        // Fleet-unique key (may differ from
                                        // source->node() when scenarios collide).
    const Avmm* target = nullptr;       // Machine endpoint (evidence identity,
                                        // snapshots for spot checks).
    const SegmentSource* source = nullptr;
    Bytes reference_image;
    std::vector<Authenticator> auths;
    std::string checkpoint_dir;         // "" = stateless (no resume/capture).
    // When set, checkpoint captures for this auditee are written through
    // the store's batched-fsync path (CheckpointConfig::aux_store),
    // typically the LogStore that owns checkpoint_dir.
    LogStore* checkpoint_store = nullptr;
    const KeyRegistry* registry = nullptr;  // null = the service default.
    size_t mem_size = 0;                // 0 = the service's audit.mem_size.
  };

  explicit FleetAuditService(const KeyRegistry* registry, FleetAuditConfig cfg = {});
  ~FleetAuditService();
  FleetAuditService(const FleetAuditService&) = delete;
  FleetAuditService& operator=(const FleetAuditService&) = delete;

  // Registration and auth refresh are rejected while jobs for the node
  // are queued or running (throws std::logic_error), so a job never
  // observes a half-updated registration.
  void RegisterAuditee(Registration reg);
  void UpdateAuths(const NodeId& node, std::vector<Authenticator> auths);
  size_t auditee_count() const;

  // Enqueue jobs; returns a job id resolvable via Result() after
  // Drain() (or once the job completed).
  uint64_t SubmitFullAudit(const NodeId& node, FleetPriority priority = FleetPriority::kNormal);
  uint64_t SubmitSpotCheck(const NodeId& node, uint64_t from_snapshot_id,
                           uint64_t to_snapshot_id,
                           FleetPriority priority = FleetPriority::kNormal);
  uint64_t SubmitOnlinePoll(const NodeId& node, FleetPriority priority = FleetPriority::kHigh);

  // Unpauses a service constructed with start_paused (no-op otherwise).
  void Resume();

  // Blocks until every submitted job has completed.
  void Drain();

  std::optional<FleetJobResult> Result(uint64_t job_id) const;
  std::vector<FleetJobResult> ResultsFor(const NodeId& node) const;
  // Compatibility view: rebuilt from this instance's registry counters.
  FleetStats stats() const;

  // Telemetry exporters (process-wide registry + trace buffer).
  std::string MetricsPrometheus() const;
  std::string MetricsSnapshotJson() const;
  bool ExportPrometheus(const std::string& path, std::string* error = nullptr) const;
  bool ExportSnapshotJson(const std::string& path, std::string* error = nullptr) const;
  bool ExportChromeTrace(const std::string& path, std::string* error = nullptr) const;

 private:
  struct Job {
    uint64_t id = 0;
    FleetJobType type = FleetJobType::kFullAudit;
    FleetPriority priority = FleetPriority::kNormal;
    uint64_t from_snapshot = 0, to_snapshot = 0;  // Spot checks.
    uint64_t submit_index = 0;  // FIFO tiebreak within one priority.
    uint64_t submit_us = 0;     // Queue-wait stamp (0 when telemetry is off).
  };

  struct Auditee {
    Registration reg;
    std::deque<Job> queue;  // Submission order; scheduler picks by priority.
    bool running = false;
    uint64_t last_served = 0;  // Serve counter for round robin.
    // Persistent online-replay session (lazily created, survives polls).
    std::unique_ptr<OnlineAuditor> online;
  };

  uint64_t Submit(const NodeId& node, Job job);
  void RegisterObsMetrics();
  void WorkerLoop();
  // Under mu_: picks (auditee, job) per the fairness policy, or returns
  // false when nothing is runnable.
  bool PickJob(Auditee** auditee, Job* job);
  FleetJobResult RunJob(Auditee& auditee, const Job& job);

  const KeyRegistry* registry_;
  FleetAuditConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // New work or shutdown.
  std::condition_variable idle_cv_;   // outstanding_ reached 0.
  std::map<NodeId, Auditee> auditees_;
  std::map<uint64_t, FleetJobResult> results_;
  uint64_t next_job_id_ = 1;
  uint64_t submit_counter_ = 0;
  uint64_t serve_counter_ = 0;
  uint64_t completion_counter_ = 0;
  size_t outstanding_ = 0;  // Queued + running jobs.
  bool stopping_ = false;
  bool paused_ = false;

  // The FleetStats fields, migrated onto the process-wide registry.
  // Each service instance gets a distinct {svc=<serial>} label so two
  // services in one process don't share counters; stats() reads these
  // back into the legacy struct. Registry slots are leaked-by-design
  // (Registry::Global() outlives every service), so raw pointers are
  // safe for the service's lifetime.
  struct ObsMetrics {
    obs::Counter* jobs_completed = nullptr;
    obs::Counter* full_audits = nullptr;
    obs::Counter* spot_checks = nullptr;
    obs::Counter* online_polls = nullptr;
    obs::Counter* audits_resumed = nullptr;
    obs::Counter* audits_cold = nullptr;
    obs::Counter* checkpoints_written = nullptr;
    obs::Counter* checkpoints_rejected = nullptr;
    obs::Counter* entries_scanned = nullptr;
    obs::Counter* entries_skipped = nullptr;
    obs::Counter* faults_detected = nullptr;
    obs::Counter* targets_rewound = nullptr;
    // Scheduler health, indexed by FleetJobType.
    obs::Histogram* queue_wait_us[3] = {nullptr, nullptr, nullptr};
    obs::Histogram* service_us[3] = {nullptr, nullptr, nullptr};
  };
  ObsMetrics obs_;
  std::string svc_label_;

  std::vector<std::thread> workers_;
};

}  // namespace avm

#endif  // SRC_AUDIT_FLEET_H_
