// The multi-tenant audit service (§6.11, §8): one auditor responsible
// for a fleet of accountable machines.
//
// FleetAuditService registers N auditee logs (any SegmentSource — a
// live in-memory log or a store::LogStore opened from disk) and shards
// full-audit / spot-check / online-poll jobs across its worker threads
// with per-auditee fairness and priorities:
//
//  * at most one job per auditee runs at a time (jobs share the
//    auditee's checkpoint file and online-replay session);
//  * among runnable auditees, the highest-priority queued job wins;
//    ties go to the least-recently-served auditee (round robin), so a
//    chatty auditee cannot starve the rest;
//  * full audits run through CheckpointedAuditor: each one resumes
//    from the auditee's persisted checkpoint (src/audit/checkpoint)
//    and refreshes it, so re-auditing a long-lived machine costs
//    O(new entries), not O(total log);
//  * online polls keep a persistent OnlineAuditor per auditee (the
//    §6.11 lag metric), surfacing a target-log rewind as its own
//    status instead of stale progress.
//
// Verdicts are those of the single-auditee entry points, bit for bit:
// sharding, priorities and checkpoints change only wall-clock time.
//
// Telemetry: the service's counters live in the process-wide obs
// registry (labeled {svc=<instance serial>}); FleetStats and stats()
// remain as a compatibility view read back from those counters. The
// scheduler additionally records per-job-type queue-wait and service
// -time histograms and a per-node online-lag gauge (§6.11), and the
// Export* methods write the Prometheus / JSON / Chrome-trace artifacts
// a fleet operator scrapes.
#ifndef SRC_AUDIT_FLEET_H_
#define SRC_AUDIT_FLEET_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/auditor.h"
#include "src/audit/checkpoint.h"
#include "src/audit/online.h"
#include "src/obs/metrics.h"

namespace avm {

namespace chaos {
class FaultInjector;  // src/chaos/fault_plan.h
}

enum class FleetJobType : uint8_t { kFullAudit = 0, kSpotCheck = 1, kOnlinePoll = 2 };
enum class FleetPriority : uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };

const char* FleetJobTypeName(FleetJobType t);

// Injected by a test or chaos harness through
// FleetAuditConfig::fault_hook: what should happen to this job attempt
// before the audit itself runs.
struct FleetJobFault {
  bool fail = false;      // Kill the attempt (worker survives, job retries).
  uint64_t stall_us = 0;  // Slow-peer stall before the attempt runs.
  std::string what;       // Error string when fail is set.
};

// What a Registration::recover_source callback hands back after
// repairing a broken auditee (typically: reopen a poisoned LogStore).
// A null source means "nothing to recover, retry against the old one".
struct RecoveredSource {
  const SegmentSource* source = nullptr;
  LogStore* checkpoint_store = nullptr;  // Null keeps the old store.
};

// Self-healing policy. The defaults retry transient job errors a couple
// of times with exponential backoff and never quarantine; a fleet that
// wants fail-fast sets max_attempts = 1. Retries apply only to *job
// errors* (exceptions, injected faults, timeouts) — an audit that runs
// to completion and returns a failing verdict is evidence, not an
// error, and is never retried.
struct FleetRetryPolicy {
  unsigned max_attempts = 3;            // Total attempts per job (>= 1).
  uint64_t backoff_initial_us = 10'000; // Delay before attempt 2.
  double backoff_multiplier = 2.0;      // Exponential growth per retry.
  uint64_t backoff_max_us = 5'000'000;  // Backoff ceiling.
  uint64_t job_timeout_us = 0;          // 0 = no per-job timeout. A job whose
                                        // attempt ran longer than this counts
                                        // as failed and retries.
  unsigned quarantine_after = 0;        // Consecutive job errors before the
                                        // auditee is quarantined (0 = never).
  uint64_t quarantine_release_us = 0;   // Auto-release after this long
                                        // (0 = only Rehabilitate() releases).
};

struct FleetAuditConfig {
  // Service worker threads (0 = one per hardware thread). Sharding
  // whole jobs across workers is the scaling axis; within one job the
  // audit runs with `audit.threads` (defaulted to 1 here, so a fleet
  // does not multiply thread counts unless explicitly asked to).
  unsigned workers = 2;
  AuditConfig audit;
  CheckpointConfig checkpoint;
  // Resume full audits from (and refresh) per-auditee checkpoints when
  // the registration names a checkpoint directory.
  bool resume_from_checkpoints = true;
  // Start with the scheduler paused: jobs queue but none runs until
  // Resume(). Lets a caller submit a whole batch and observe the
  // fairness policy deterministically (tests do).
  bool start_paused = false;
  // Retry / timeout / quarantine policy (see FleetRetryPolicy).
  FleetRetryPolicy retry;
  // Virtual clock in microseconds for backoff and quarantine deadlines.
  // Null = steady_clock. With a virtual clock the workers cannot sleep
  // until a deadline, so advance the clock and Kick() to re-probe.
  std::function<uint64_t()> clock;
  // Chaos seam: every job attempt consults the injector's
  // kAuditWorkerDeath / kAuditSlowPeer events. Null or an empty plan is
  // behaviorally identical to no injector.
  chaos::FaultInjector* chaos = nullptr;
  // Test seam with the same contract as `chaos`, as a plain callback:
  // (node, job type, attempt number starting at 1) -> fault.
  std::function<FleetJobFault(const NodeId&, FleetJobType, unsigned)> fault_hook;
};

struct FleetJobResult {
  uint64_t job_id = 0;
  NodeId node;  // Registration key (unique across the fleet).
  FleetJobType type = FleetJobType::kFullAudit;
  FleetPriority priority = FleetPriority::kNormal;

  // Full audits and spot checks.
  AuditOutcome outcome;
  ResumeInfo resume;

  // Online polls (replay-only, like OnlineAuditor).
  ReplayResult online;
  OnlinePollStatus online_status = OnlinePollStatus::kIdle;
  uint64_t online_lag_entries = 0;

  double seconds = 0;
  // Global completion order (0-based): what the fairness tests assert.
  uint64_t completion_index = 0;

  // Robustness fields. A job that never produced a verdict (worker
  // exception, injected fault, timeout, quarantine) reports job_error
  // with the reason in `error`; outcome.ok is false and the syntactic
  // check carries the same string, so a caller that only looks at the
  // verdict still sees an honest failure — never a silent pass.
  bool job_error = false;
  bool quarantined = false;  // Result produced by quarantine, not by an audit.
  std::string error;
  unsigned attempts = 1;               // Attempts consumed (1 = first try).
  std::vector<uint64_t> backoffs_us;   // Backoff applied before each retry.
};

struct FleetStats {
  uint64_t jobs_completed = 0;
  uint64_t full_audits = 0;
  uint64_t spot_checks = 0;
  uint64_t online_polls = 0;
  uint64_t audits_resumed = 0;       // Full audits that resumed from a checkpoint.
  uint64_t audits_cold = 0;          // Full audits from genesis.
  uint64_t checkpoints_written = 0;
  uint64_t checkpoints_rejected = 0; // Invalid/forged/stale checkpoint files.
  uint64_t entries_scanned = 0;      // Entries actually read + verified.
  uint64_t entries_skipped = 0;      // Entries behind accepted checkpoints.
  uint64_t faults_detected = 0;      // Failed audits + online divergences.
  uint64_t targets_rewound = 0;      // Online polls that saw the log shrink.
  uint64_t jobs_failed = 0;          // Jobs that exhausted every attempt.
  uint64_t job_retries = 0;          // Attempts re-queued after a job error.
  uint64_t quarantines = 0;          // Auditees quarantined.
  uint64_t quarantine_releases = 0;  // Auto-releases + Rehabilitate() calls.
  uint64_t store_recoveries = 0;     // recover_source() swaps that took effect.
  uint64_t degraded_results = 0;     // Results answered by quarantine status.
  std::string last_error;            // Most recent job-error string.
};

class FleetAuditService {
 public:
  struct Registration {
    NodeId node;                        // Fleet-unique key (may differ from
                                        // source->node() when scenarios collide).
    const Avmm* target = nullptr;       // Machine endpoint (evidence identity,
                                        // snapshots for spot checks).
    const SegmentSource* source = nullptr;
    Bytes reference_image;
    std::vector<Authenticator> auths;
    std::string checkpoint_dir;         // "" = stateless (no resume/capture).
    // When set, checkpoint captures for this auditee are written through
    // the store's batched-fsync path (CheckpointConfig::aux_store),
    // typically the LogStore that owns checkpoint_dir.
    LogStore* checkpoint_store = nullptr;
    const KeyRegistry* registry = nullptr;  // null = the service default.
    size_t mem_size = 0;                // 0 = the service's audit.mem_size.
    // Called (without the service lock) before a failed job retries:
    // the owner may repair the auditee — typically reopen a poisoned
    // LogStore — and return the replacement source/store. Returning a
    // null source leaves the registration untouched.
    std::function<RecoveredSource()> recover_source;
  };

  explicit FleetAuditService(const KeyRegistry* registry, FleetAuditConfig cfg = {});
  ~FleetAuditService();
  FleetAuditService(const FleetAuditService&) = delete;
  FleetAuditService& operator=(const FleetAuditService&) = delete;

  // Registration and auth refresh are rejected while jobs for the node
  // are queued or running (throws std::logic_error), so a job never
  // observes a half-updated registration.
  void RegisterAuditee(Registration reg);
  void UpdateAuths(const NodeId& node, std::vector<Authenticator> auths);
  size_t auditee_count() const;

  // Enqueue jobs; returns a job id resolvable via Result() after
  // Drain() (or once the job completed).
  uint64_t SubmitFullAudit(const NodeId& node, FleetPriority priority = FleetPriority::kNormal);
  uint64_t SubmitSpotCheck(const NodeId& node, uint64_t from_snapshot_id,
                           uint64_t to_snapshot_id,
                           FleetPriority priority = FleetPriority::kNormal);
  uint64_t SubmitOnlinePoll(const NodeId& node, FleetPriority priority = FleetPriority::kHigh);

  // Unpauses a service constructed with start_paused (no-op otherwise).
  void Resume();

  // Wakes every worker to re-probe the queues. Needed after advancing a
  // virtual clock (cfg.clock) past a backoff or quarantine deadline —
  // workers cannot sleep on a clock they cannot observe advancing.
  void Kick();

  // Manually releases a quarantined auditee and clears its error
  // streak. Throws std::out_of_range for an unknown node.
  void Rehabilitate(const NodeId& node);

  // Blocks until every submitted job has completed.
  void Drain();

  std::optional<FleetJobResult> Result(uint64_t job_id) const;
  std::vector<FleetJobResult> ResultsFor(const NodeId& node) const;
  // Compatibility view: rebuilt from this instance's registry counters.
  FleetStats stats() const;

  // Telemetry exporters (process-wide registry + trace buffer).
  std::string MetricsPrometheus() const;
  std::string MetricsSnapshotJson() const;
  bool ExportPrometheus(const std::string& path, std::string* error = nullptr) const;
  bool ExportSnapshotJson(const std::string& path, std::string* error = nullptr) const;
  bool ExportChromeTrace(const std::string& path, std::string* error = nullptr) const;

 private:
  struct Job {
    uint64_t id = 0;
    FleetJobType type = FleetJobType::kFullAudit;
    FleetPriority priority = FleetPriority::kNormal;
    uint64_t from_snapshot = 0, to_snapshot = 0;  // Spot checks.
    uint64_t submit_index = 0;  // FIFO tiebreak within one priority.
    uint64_t submit_us = 0;     // Queue-wait stamp (0 when telemetry is off).
    unsigned attempt = 1;       // 1-based attempt number.
    uint64_t not_before_us = 0; // Backoff deadline (NowUs clock domain).
    std::vector<uint64_t> backoffs_us;  // Backoffs applied so far.
  };

  struct Auditee {
    Registration reg;
    std::deque<Job> queue;  // Submission order; scheduler picks by priority.
    bool running = false;
    uint64_t last_served = 0;  // Serve counter for round robin.
    // Persistent online-replay session (lazily created, survives polls).
    std::unique_ptr<OnlineAuditor> online;
    // Quarantine state (see FleetRetryPolicy).
    unsigned consecutive_errors = 0;
    bool quarantined = false;
    uint64_t quarantine_until_us = 0;
    std::string last_error;
  };

  uint64_t Submit(const NodeId& node, Job job);
  void RegisterObsMetrics();
  void WorkerLoop();
  // Under mu_: picks (auditee, job) per the fairness policy, or returns
  // false when nothing is runnable. Jobs whose backoff deadline has not
  // passed are skipped; a quarantined auditee's job is returned with
  // *degraded set (the caller answers it without running an audit) and
  // the quarantine explanation in *degraded_error.
  bool PickJob(Auditee** auditee, Job* job, bool* degraded, std::string* degraded_error);
  FleetJobResult RunJob(Auditee& auditee, const Job& job);
  // Current time on the configured clock (cfg_.clock or steady_clock).
  uint64_t NowUs() const;
  // Under mu_: earliest backoff/quarantine deadline among queued jobs,
  // or UINT64_MAX when nothing is waiting on time.
  uint64_t NextDueLocked() const;

  const KeyRegistry* registry_;
  FleetAuditConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // New work or shutdown.
  std::condition_variable idle_cv_;   // outstanding_ reached 0.
  std::map<NodeId, Auditee> auditees_;
  std::map<uint64_t, FleetJobResult> results_;
  uint64_t next_job_id_ = 1;
  uint64_t submit_counter_ = 0;
  uint64_t serve_counter_ = 0;
  uint64_t completion_counter_ = 0;
  size_t outstanding_ = 0;  // Queued + running jobs.
  bool stopping_ = false;
  bool paused_ = false;

  // The FleetStats fields, migrated onto the process-wide registry.
  // Each service instance gets a distinct {svc=<serial>} label so two
  // services in one process don't share counters; stats() reads these
  // back into the legacy struct. Registry slots are leaked-by-design
  // (Registry::Global() outlives every service), so raw pointers are
  // safe for the service's lifetime.
  struct ObsMetrics {
    obs::Counter* jobs_completed = nullptr;
    obs::Counter* full_audits = nullptr;
    obs::Counter* spot_checks = nullptr;
    obs::Counter* online_polls = nullptr;
    obs::Counter* audits_resumed = nullptr;
    obs::Counter* audits_cold = nullptr;
    obs::Counter* checkpoints_written = nullptr;
    obs::Counter* checkpoints_rejected = nullptr;
    obs::Counter* entries_scanned = nullptr;
    obs::Counter* entries_skipped = nullptr;
    obs::Counter* faults_detected = nullptr;
    obs::Counter* targets_rewound = nullptr;
    // Self-healing (chaos-sweep) instrumentation.
    obs::Counter* jobs_failed = nullptr;
    obs::Counter* job_retries = nullptr;
    obs::Counter* quarantines = nullptr;
    obs::Counter* quarantine_releases = nullptr;
    obs::Counter* store_recoveries = nullptr;
    obs::Counter* degraded_results = nullptr;
    obs::Histogram* retry_backoff_us = nullptr;
    obs::Gauge* quarantined_auditees = nullptr;
    // Scheduler health, indexed by FleetJobType.
    obs::Histogram* queue_wait_us[3] = {nullptr, nullptr, nullptr};
    obs::Histogram* service_us[3] = {nullptr, nullptr, nullptr};
  };
  ObsMetrics obs_;
  std::string svc_label_;
  std::string last_error_;  // Under mu_; surfaced via stats().

  std::vector<std::thread> workers_;
};

}  // namespace avm

#endif  // SRC_AUDIT_FLEET_H_
