#include "src/audit/evidence.h"

#include "src/audit/auditor.h"
#include "src/audit/replayer.h"
#include "src/avmm/snapshot.h"
#include "src/tel/verifier.h"
#include "src/util/serde.h"

namespace avm {

const char* EvidenceKindName(EvidenceKind k) {
  switch (k) {
    case EvidenceKind::kReplayDivergence:
      return "replay-divergence";
    case EvidenceKind::kProtocolViolation:
      return "protocol-violation";
    case EvidenceKind::kForkProof:
      return "fork-proof";
  }
  return "?";
}

Bytes Evidence::Serialize() const {
  Writer w;
  w.U8(static_cast<uint8_t>(kind));
  w.Str(accused);
  w.Str(claim);
  w.Blob(segment);
  w.U32(static_cast<uint32_t>(auths.size()));
  for (const Bytes& a : auths) {
    w.Blob(a);
  }
  w.U32(static_cast<uint32_t>(snapshot_deltas.size()));
  for (const Bytes& d : snapshot_deltas) {
    w.Blob(d);
  }
  w.U64(mem_size);
  return w.Take();
}

Evidence Evidence::Deserialize(ByteView data) {
  Reader r(data);
  Evidence e;
  uint8_t k = r.U8();
  if (k < 1 || k > 3) {
    throw SerdeError("Evidence: bad kind");
  }
  e.kind = static_cast<EvidenceKind>(k);
  e.accused = r.Str();
  e.claim = r.Str();
  e.segment = r.Blob();
  uint32_t na = r.U32();
  for (uint32_t i = 0; i < na; i++) {
    e.auths.push_back(r.Blob());
  }
  uint32_t nd = r.U32();
  for (uint32_t i = 0; i < nd; i++) {
    e.snapshot_deltas.push_back(r.Blob());
  }
  e.mem_size = r.U64();
  r.ExpectEnd();
  return e;
}

EvidenceVerdict VerifyEvidence(const Evidence& evidence, const KeyRegistry& registry,
                               ByteView reference_image) {
  EvidenceVerdict verdict;

  std::vector<Authenticator> auths;
  try {
    for (const Bytes& a : evidence.auths) {
      auths.push_back(Authenticator::Deserialize(a));
    }
  } catch (const SerdeError& e) {
    verdict.detail = std::string("evidence malformed: ") + e.what();
    return verdict;
  }

  if (evidence.kind == EvidenceKind::kForkProof) {
    if (auths.size() != 2) {
      verdict.detail = "fork proof must contain exactly two authenticators";
      return verdict;
    }
    if (auths[0].node != evidence.accused) {
      verdict.detail = "fork proof does not name the accused";
      return verdict;
    }
    if (IsForkProof(auths[0], auths[1], registry)) {
      verdict.fault_confirmed = true;
      verdict.detail = "two valid authenticators commit to different logs at seq " +
                       std::to_string(auths[0].seq);
    } else {
      verdict.detail = "authenticators do not constitute a fork proof";
    }
    return verdict;
  }

  LogSegment segment;
  try {
    segment = LogSegment::Deserialize(evidence.segment);
  } catch (const SerdeError& e) {
    verdict.detail = std::string("evidence segment malformed: ") + e.what();
    return verdict;
  }
  if (segment.node != evidence.accused) {
    verdict.detail = "segment does not belong to the accused";
    return verdict;
  }

  // The segment must be authentic: otherwise the *accuser* may have
  // fabricated it, and it proves nothing about the accused (§4.7 accuracy).
  CheckResult auth_check = VerifyAgainstAuthenticators(segment, auths, registry);
  if (!auth_check.ok) {
    verdict.detail = "segment not authenticated: " + auth_check.reason;
    return verdict;
  }

  // Repeat the syntactic message check.
  AuditConfig cfg;
  cfg.mem_size = evidence.mem_size;
  cfg.strict_message_crossref = evidence.snapshot_deltas.empty();
  CheckResult syntactic = SyntacticMessageCheck(segment, registry, cfg);
  if (!syntactic.ok) {
    verdict.fault_confirmed = true;
    verdict.detail = "protocol violation confirmed: " + syntactic.reason + " at seq " +
                     std::to_string(syntactic.bad_seq);
    return verdict;
  }
  if (evidence.kind == EvidenceKind::kProtocolViolation) {
    verdict.detail = "claimed protocol violation not reproducible; accused appears correct";
    return verdict;
  }

  // Repeat the semantic check.
  ReplayResult replay;
  if (evidence.snapshot_deltas.empty()) {
    replay = ReplaySegment(segment, reference_image, evidence.mem_size);
  } else {
    SnapshotStore store;
    try {
      for (const Bytes& d : evidence.snapshot_deltas) {
        store.Add(SnapshotDelta::Deserialize(d));
      }
      MaterializedState start = store.Materialize(store.Count() - 1, evidence.mem_size);
      replay = ReplaySegment(segment, start);
    } catch (const std::exception& e) {
      verdict.detail = std::string("evidence snapshots malformed: ") + e.what();
      return verdict;
    }
  }

  if (!replay.ok) {
    verdict.fault_confirmed = true;
    verdict.detail = "replay divergence confirmed: " + replay.reason + " at seq " +
                     std::to_string(replay.diverged_seq);
  } else {
    verdict.detail = "log replays correctly against the reference image; accused appears correct";
  }
  return verdict;
}

}  // namespace avm
