// Audit checkpoints (§6.11, §8): resumable, incremental audits.
//
// The paper's deployment story is one auditor responsible for many
// accountable machines over long uptimes, yet a from-genesis
// AuditFull replays the *whole* log every time — O(total log) per
// re-audit. A checkpoint persists everything the auditor has already
// established about one auditee's log prefix 1..S:
//
//  * the verified chain watermark (S, h_S);
//  * the replayed reference-machine state at S (CpuState + memory,
//    LZSS-compressed, authenticated by its Merkle state root — the
//    same machinery as the §4.4 snapshots in src/avmm/snapshot);
//  * the streaming syntactic-scan state (message-stream state machine,
//    mid-batch-window pending entries, attested-input cursor);
//  * the chain hashes at every authenticator seq verified so far.
//
// A later audit resumes at S+1 and produces bit-for-bit the verdict of
// a from-genesis audit. Trust model: the checkpoint is the *auditor's*
// own record (signed with the auditor's key and kept in the auditee's
// store directory); a forged or stale file fails signature/digest/chain
// validation and the audit silently falls back to genesis, and
// tampering behind an accepted checkpoint is still caught — rewriting
// the prefix changes h_S (checkpoint rejected, genesis audit catches
// the tamper) or contradicts an authenticator resolved against the
// watermarked chain.
#ifndef SRC_AUDIT_CHECKPOINT_H_
#define SRC_AUDIT_CHECKPOINT_H_

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "src/audit/auditor.h"
#include "src/crypto/keys.h"
#include "src/tel/segment_source.h"
#include "src/util/bytes.h"

namespace avm {

class LogStore;

struct AuditCheckpoint {
  NodeId node;                // Whose log this watermark is about.
  NodeId auditor;             // Who verified the prefix (signature key id).
  uint64_t seq = 0;           // Last verified seq (the watermark S).
  Hash256 chain_hash;         // h_S: the log's chain hash at S.
  uint64_t mem_size = 0;      // Reference machine memory size.
  Bytes machine_state;        // MaterializedState wire form at S (CpuState +
                              // LZSS memory + its Merkle root, §4.4's rule).
  Bytes scan_state;           // ChunkedSyntacticChecker resumable state.
  // Chain hash at each authenticator seq verified up to S: lets a
  // resumed audit re-check authenticators behind the watermark (new
  // ones included) without reading the prefix back from the store.
  std::map<uint64_t, Hash256> verified_auth_hashes;
  Bytes signature;            // Auditor's signature over PayloadDigest().

  // SHA-256 over every field except the signature; what gets signed.
  Hash256 PayloadDigest() const;
  Bytes Serialize() const;
  // Throws SerdeError on malformed or truncated input.
  static AuditCheckpoint Deserialize(ByteView data);
};

// File name a checkpoint is kept under inside the auditee's log/store
// directory: "audit-<auditor>.ckpt" ('/' mapped to '_', so device
// identities like "node/input" stay single path components).
std::string AuditCheckpointFileName(const NodeId& auditor);

// Atomically persists `cp` into `dir` (via LogStore::WriteAuxFile, so
// a crash mid-write leaves only a *.tmp that store recovery removes).
// With `aux_store`, the write goes through that store's batched-fsync
// path instead (WriteAuxFileBatched): the rename is still atomic, and
// the fsync piggybacks on the store's next group commit rather than
// costing the audit thread a synchronous durability round-trip.
void SaveAuditCheckpoint(const std::string& dir, const AuditCheckpoint& cp, bool sync = false,
                         LogStore* aux_store = nullptr);

// Loads the checkpoint `auditor` previously saved in `dir`. Returns
// nullopt when absent or unparseable (a corrupt checkpoint is a reason
// to fall back to genesis, never to fail the audit). When
// `reject_reason` is non-null it is set to "" for a cleanly absent
// file and to the parse/read failure otherwise.
std::optional<AuditCheckpoint> LoadAuditCheckpoint(const std::string& dir,
                                                   const NodeId& auditor,
                                                   std::string* reject_reason = nullptr);

// How checkpointed audits behave.
struct CheckpointConfig {
  // Capture cadence in log entries (0 = never write checkpoints).
  // Captures land on the first chunk boundary at or after each multiple
  // of the cadence, and only from fully-verified, replay-quiescent
  // states — so the cadence changes how much a resume saves, never any
  // verdict.
  uint64_t every_entries = 8192;
  // The auditing identity: names the checkpoint file, and — when
  // `signer` is set — signs checkpoints so the (auditee-controlled)
  // store cannot forge one. With no signer, checkpoints carry an empty
  // signature and validation degrades to digest + chain-hash checks
  // (the avmm-nosig posture: fine against corruption, not malice).
  NodeId auditor = "auditor";
  const Signer* signer = nullptr;
  // fsync checkpoint files (tests and benches leave this off).
  bool sync = false;
  // When set, checkpoint writes go through this store's batched-fsync
  // path (LogStore::WriteAuxFileBatched) instead of a standalone
  // synchronous write; `sync` is then irrelevant. Typically the
  // auditee's own store, whose directory also holds the checkpoint.
  LogStore* aux_store = nullptr;
};

// Why the last AuditFull call did or did not resume.
struct ResumeInfo {
  bool resumed = false;
  uint64_t resumed_from = 0;        // Watermark S when resumed.
  bool checkpoint_rejected = false; // A checkpoint existed but failed validation.
  std::string reject_reason;
  uint64_t entries_scanned = 0;     // Entries read by this audit.
  uint64_t checkpoints_written = 0;
};

// A full-audit driver that resumes from (and refreshes) a persisted
// checkpoint. Verdicts — ok, syntactic/semantic reason + seq, evidence
// kind — are bit-for-bit those of Auditor::AuditFull at every cadence,
// sign mode and thread count; only wall-clock time and the bytes-read
// accounting change. With cfg.threads > 1 the replay of chunk i
// overlaps the syntactic check of chunk i+1 (the src/audit/pipeline
// idea, with a join at every capture point).
class CheckpointedAuditor {
 public:
  CheckpointedAuditor(NodeId self, const KeyRegistry* registry, AuditConfig cfg = {},
                      CheckpointConfig ckpt = {})
      : self_(std::move(self)), registry_(registry), cfg_(cfg), ckpt_(ckpt) {}

  // Full audit of `source`, resuming from the checkpoint in
  // `checkpoint_dir` when one validates (pass "" to disable both resume
  // and capture). `target` plays the same role as in Auditor::AuditFull
  // (accused identity for evidence).
  AuditOutcome AuditFull(const Avmm& target, const SegmentSource& source,
                         ByteView reference_image, std::span<const Authenticator> auths,
                         const std::string& checkpoint_dir, ResumeInfo* info = nullptr);

  const AuditConfig& config() const { return cfg_; }
  const CheckpointConfig& checkpoint_config() const { return ckpt_; }

 private:
  ThreadPool* EnsurePool();

  NodeId self_;
  const KeyRegistry* registry_;
  AuditConfig cfg_;
  CheckpointConfig ckpt_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace avm

#endif  // SRC_AUDIT_CHECKPOINT_H_
