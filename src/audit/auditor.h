// Auditing (§4.5): the syntactic check (log well-formedness, signatures,
// ack pairing, message/trace cross-referencing) and the semantic check
// (deterministic replay), plus full-audit and spot-check drivers.
#ifndef SRC_AUDIT_AUDITOR_H_
#define SRC_AUDIT_AUDITOR_H_

#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "src/audit/evidence.h"
#include "src/audit/replayer.h"
#include "src/avmm/recorder.h"
#include "src/tel/segment_source.h"
#include "src/tel/verifier.h"
#include "src/util/threadpool.h"

namespace avm {

struct AuditConfig {
  size_t mem_size = 256 * 1024;
  // Worker threads for the verification hot path (hash-chain links,
  // per-authenticator and per-message RSA checks, independent segment
  // audits in SpotCheckMany). 0 = one per hardware thread; 1 = run
  // everything on the calling thread, reproducing the sequential code
  // path bit-for-bit. Verdicts are identical at every setting; only
  // wall-clock time changes.
  unsigned threads = 0;
  // §7.2 extension: the audited node's inputs are signed by a trusted
  // input device whose key is registered as "<node>/input"; the
  // syntactic check then verifies every consumed input event.
  bool attested_input = false;
  // Full audits cross-reference the message stream against the MAC-layer
  // trace strictly (every DMA delivery must match the RECV queue in FIFO
  // order). Spot-check segments can begin mid-queue, so the check is
  // relaxed to packets visible within the segment.
  bool strict_message_crossref = true;
  // Overlap the syntactic check with the semantic check (deterministic
  // replay) on the worker pool: replay runs concurrently with hashing +
  // signature verification instead of strictly after it, and the
  // store-backed AuditFull streams chunk i+1 through the syntactic
  // checks while chunk i replays (O(chunk) memory). Takes effect only
  // when the resolved thread count is > 1; every verdict — audit,
  // spot check, evidence kind, failure seq — is bit-for-bit identical
  // to the sequential phases (asserted by pipeline_audit_test), only
  // wall-clock time changes.
  bool pipelined = true;
  // Entries per chunk for the store-backed streaming pipeline.
  size_t pipeline_chunk_entries = 2048;
  // Run the semantic check (deterministic replay) through the x86-64
  // JIT tier where compiled in (src/vm/jit). Off replays on the
  // decoded-cache interpreter. Verdicts are bit-for-bit identical
  // either way (asserted by pipeline_audit_test); only replay wall
  // clock changes.
  bool jit_replay = true;
  // Pre-audit pass: statically verify the reference image (CFG
  // recovery + the src/vm/analysis verifier) before replay starts. An
  // image with errors (illegal opcodes, direct jumps out of the image,
  // statically out-of-bounds accesses) fails the audit up front without
  // replaying a single instruction; warnings (self-modifying stores,
  // unreachable code) are attached to the outcome but do not fail it.
  bool verify_image = false;
};

// The §4.4/§4.5 syntactic check on a segment whose chain/authenticators
// have already been (or will be) verified:
//  * every entry parses according to its type;
//  * SEND/RECV records name this node as src/dst respectively;
//  * payload signatures inside SEND/RECV entries verify;
//  * every ACK corresponds to an earlier SEND;
//  * packets the guest transmitted (MAC OUT) match the SEND stream, and
//    packets delivered into the guest (MAC DMA) match the RECV stream —
//    this is the cross-reference that catches an AVMM forging, dropping
//    or modifying messages between the network and the AVM.
// The per-entry RSA checks (SEND/RECV payload signatures, ACK
// authenticators) dominate the cost; passing a pool precomputes them in
// parallel before the sequential cross-reference scan consumes them, so
// verdicts are identical to the sequential path.
CheckResult SyntacticMessageCheck(const LogSegment& segment, const KeyRegistry& registry,
                                  const AuditConfig& cfg, ThreadPool* pool = nullptr);

struct AuditOutcome {
  bool ok = false;
  CheckResult syntactic;
  ReplayResult semantic;
  double syntactic_seconds = 0;
  double semantic_seconds = 0;
  uint64_t log_bytes = 0;       // "Downloaded" segment size.
  uint64_t snapshot_bytes = 0;  // "Downloaded" snapshot increments size.
  std::optional<Evidence> evidence;  // Present iff a fault was found.
  // AuditConfig::verify_image findings over the reference image, as
  // human-readable strings (kept decoupled from src/vm/analysis types).
  // image_errors > 0 fails the audit before replay.
  std::vector<std::string> image_findings;
  int image_errors = 0;
  int image_warnings = 0;

  std::string Describe() const;
};

// Full-audit precheck shared by Auditor and CheckpointedAuditor: a
// signature-verified authenticator past the end of the served log is
// evidence of a rewind (§4.3) — the machine signed a commitment at
// seq X but cannot produce a log containing it. Honest crash recovery
// never looks like this (no authenticator is released above the
// durability watermark), and spot checks audit a window by design, so
// the check applies to full audits only. Unverified signatures are
// skipped: a forged authenticator must not frame the auditee. Returns
// the failed outcome with kProtocolViolation evidence, or nullopt.
std::optional<AuditOutcome> DetectLogRewind(const Avmm& target, const SegmentSource& source,
                                            std::span<const Authenticator> auths,
                                            const KeyRegistry& registry, size_t mem_size);

// Positions (seq) and metadata of the kSnapshot entries in a log.
struct SnapshotIndexEntry {
  uint64_t seq;
  SnapshotMeta meta;
};
std::vector<SnapshotIndexEntry> IndexSnapshots(const TamperEvidentLog& log);
// Same, but streamed from any segment source (O(segment) memory when
// the source is a disk-backed store).
std::vector<SnapshotIndexEntry> IndexSnapshots(const SegmentSource& source);

// Drives audits against a (possibly remote, here in-process) AVMM.
// The auditor trusts only: the key registry, the reference image, and the
// authenticators it has collected; everything read from `target` is
// treated as untrusted input and verified.
class Auditor {
 public:
  Auditor(NodeId self, const KeyRegistry* registry, AuditConfig cfg = {})
      : self_(std::move(self)), registry_(registry), cfg_(cfg) {}

  // Full audit: verify the whole log and replay it from the reference
  // image (§4.5). `auths` are the authenticators this auditor collected
  // for the target during the execution.
  AuditOutcome AuditFull(const Avmm& target, ByteView reference_image,
                         std::span<const Authenticator> auths);

  // Spot check (§3.5/§6.12): audit only the chunk between two snapshots,
  // starting replay from the (verified) snapshot at `from_snapshot_id`.
  AuditOutcome SpotCheck(const Avmm& target, uint64_t from_snapshot_id, uint64_t to_snapshot_id,
                         std::span<const Authenticator> auths);

  // Audits several independent snapshot windows, fanning whole-window
  // audits (verification + replay) across the worker pool. Outcomes are
  // positionally identical to calling SpotCheck on each window in order;
  // only the wall-clock time differs.
  std::vector<AuditOutcome> SpotCheckMany(const Avmm& target,
                                          std::span<const std::pair<uint64_t, uint64_t>> windows,
                                          std::span<const Authenticator> auths);

  // Store-backed variants: identical audits, but the log is read from
  // `source` (e.g. a store::LogStore opened from disk, possibly in a
  // different process than the one that recorded it) instead of the
  // target's in-memory log. Since Extract yields the same entries, the
  // verdicts are bit-for-bit those of the in-memory path. `target` still
  // supplies what only the machine can: snapshot increments and fresh
  // end-of-segment commitments.
  AuditOutcome AuditFull(const Avmm& target, const SegmentSource& source,
                         ByteView reference_image, std::span<const Authenticator> auths);
  AuditOutcome SpotCheck(const Avmm& target, const SegmentSource& source,
                         uint64_t from_snapshot_id, uint64_t to_snapshot_id,
                         std::span<const Authenticator> auths);
  std::vector<AuditOutcome> SpotCheckMany(const Avmm& target, const SegmentSource& source,
                                          std::span<const std::pair<uint64_t, uint64_t>> windows,
                                          std::span<const Authenticator> auths);

  const AuditConfig& config() const { return cfg_; }

 private:
  AuditOutcome Run(const Avmm& target, const LogSegment& segment,
                   std::span<const Authenticator> auths, ByteView reference_image,
                   const MaterializedState* start_state, uint64_t snapshot_bytes,
                   bool strict_crossref, ThreadPool* pool);

  // `snaps` is the log's snapshot index, computed once by the caller
  // (indexing scans the whole source, which for a store-backed log
  // means reading every segment -- too costly to repeat per window).
  AuditOutcome SpotCheckImpl(const Avmm& target, const SegmentSource& source,
                             std::span<const SnapshotIndexEntry> snaps,
                             uint64_t from_snapshot_id, uint64_t to_snapshot_id,
                             std::span<const Authenticator> auths, ThreadPool* pool);

  // Constructs the worker pool on first use, so auditors created in a
  // loop (one per audit) cost nothing until they actually audit.
  // Returns null when the resolved thread count is 1 (sequential mode).
  ThreadPool* EnsurePool() {
    if (pool_ == nullptr && ResolveThreads(cfg_.threads) > 1) {
      pool_ = std::make_unique<ThreadPool>(cfg_.threads);
    }
    return pool_.get();
  }

  NodeId self_;
  const KeyRegistry* registry_;
  AuditConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;
};

// Streams the entire log of `source` through the §4.4/§4.5 syntactic
// checks -- chain rule, seq continuity, authenticator matching, and the
// full message-stream check -- without ever materializing more than one
// store segment. This is how an auditor triages a log far larger than
// RAM before deciding which windows are worth replaying; store-layer
// corruption (bad CRC, truncated segment) surfaces as a failed check,
// not an exception. Single-threaded by construction (the stream is
// consumed in order), so there is no pool parameter.
//
// NOTE: this triage entry point reports the *first failure in seq
// order* with the checks interleaved per entry — intentionally not the
// phase-priority ordering of AuditFull (chain, then authenticators,
// then message stream), which ChunkedSyntacticChecker in
// src/audit/pipeline.h reproduces. When touching the chain rule or the
// authenticator checks, update all three walks (VerifyChain, this, the
// chunked checker) — the equivalence tests in pipeline_audit_test and
// store_test will catch drift.
CheckResult StreamingSyntacticCheck(const SegmentSource& source,
                                    std::span<const Authenticator> auths,
                                    const KeyRegistry& registry, const AuditConfig& cfg);

}  // namespace avm

#endif  // SRC_AUDIT_AUDITOR_H_
