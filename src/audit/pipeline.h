// The pipelined audit (perf layer over §4.5).
//
// A full audit has two phases: the syntactic check (hash chain,
// authenticator RSA, message-stream cross-reference) and the semantic
// check (deterministic replay). The sequential auditor runs them
// strictly in order; the pipeline overlaps them — the syntactic check
// of chunk i+1 runs on a worker while chunk i replays — without
// changing a single verdict. Two pieces:
//
//  * ChunkedSyntacticChecker: the whole-segment syntactic check as an
//    incremental consumer of entry runs. It records every failure
//    category separately (chain rule, authenticator, message stream,
//    attested input) and Finalize() assembles them in exactly the
//    priority order of the sequential composition
//    VerifyAgainstAuthenticators -> SyntacticMessageCheck ->
//    VerifyAttestedInputs, so the reported verdict — reason and seq —
//    is bit-for-bit the sequential one even though the scan interleaves
//    the checks per chunk.
//
//  * PipelinedStreamingAuditFull: the store-backed full audit driver.
//    A pool task extracts chunk after chunk from the SegmentSource
//    (O(chunk) memory, SegmentCursor-style) and feeds the checker; the
//    calling thread replays the chunks from a small bounded queue.
//    Unreadable-source, syntactic and semantic outcomes mirror the
//    sequential Auditor::AuditFull exactly.
#ifndef SRC_AUDIT_PIPELINE_H_
#define SRC_AUDIT_PIPELINE_H_

#include <map>
#include <memory>
#include <optional>
#include <span>

#include "src/audit/auditor.h"
#include "src/audit/message_check.h"
#include "src/avmm/attested_input.h"

namespace avm {

class ChunkedSyntacticChecker {
 public:
  // `auths` must outlive the checker. `first_seq`/`last_seq` bound the
  // authenticator coverage exactly as VerifyAgainstAuthenticators does
  // with the materialized segment; `prior_hash` is the segment's prior
  // chain hash (Zero for a log audited from its head).
  // `auth_sig_verdicts`, when nonempty, is indexed like `auths`:
  // -1 = verify the RSA signature inline when the seq streams by,
  // 0/1 = precomputed invalid/valid (so a caller that already verified
  // a signature — e.g. the streaming driver's replay gate — does not
  // pay for it twice). Precomputed values must equal what
  // VerifySignature would return; verdicts are then identical.
  ChunkedSyntacticChecker(const NodeId& node, uint64_t first_seq, uint64_t last_seq,
                          const Hash256& prior_hash, std::span<const Authenticator> auths,
                          const KeyRegistry& registry, const AuditConfig& cfg,
                          std::span<const int8_t> auth_sig_verdicts = {});

  // Consumes the next run of entries (in log order, continuing the
  // previous runs). `smc_verdicts`, when nonempty, is indexed like
  // `entries` and carries PrecomputeMessageSigVerdicts results for the
  // message-stream scan (-1 = verify inline).
  void Feed(std::span<const LogEntry> entries, std::span<const int8_t> smc_verdicts = {});

  // True if any failure has been recorded; the final outcome will be a
  // syntactic failure, so replay work can be skipped (its result would
  // be discarded).
  bool AnyFailure() const;

  // The verdict of the sequential syntactic composition over everything
  // fed so far.
  CheckResult Finalize() const;

  // ---- Checkpoint support (src/audit/checkpoint.h) ----
  // Chain hash of the last entry fed (h_S): what a checkpoint records
  // as its verified watermark.
  const Hash256& chain_cursor() const { return prior_hash_; }
  // Seq the next fed entry must carry.
  uint64_t next_seq() const { return expect_seq_; }

  // Serializes the streaming scan state (message-stream state machine +
  // attested-input cursor) after feeding entries 1..S; failure slots are
  // intentionally not captured — checkpoints are only taken from
  // fully-verified states (AnyFailure() must be false).
  void SerializeResumableState(Writer& w) const;
  // Restores into a freshly constructed checker whose ctor received the
  // checkpoint's chain hash as `prior_hash`. The checker then behaves
  // as if entries 1..`watermark_seq` (already verified when the
  // checkpoint was written) had been fed. Throws SerdeError on
  // malformed input.
  void RestoreResumableState(Reader& r, uint64_t watermark_seq);

  // Resolves one authenticator whose seq lies at or behind the resume
  // watermark against `log_hash`, the log's (previously verified) chain
  // hash at that seq — the same sig + hash checks the entry streaming
  // by would have triggered, recorded under the same span index, so the
  // composed verdict is bit-for-bit the from-genesis one.
  void ResolveAuthBehindWatermark(size_t auth_index, const Hash256& log_hash);

 private:
  const AuditConfig cfg_;
  const KeyRegistry& registry_;
  std::span<const Authenticator> auths_;
  std::span<const int8_t> auth_sig_verdicts_;
  Hash256 prior_hash_;   // Expected prior hash of the next entry.
  uint64_t expect_seq_ = 0;
  bool started_ = false;
  uint64_t fed_ = 0;

  // seq -> indices into auths_, in span order (the order the sequential
  // scan reports authenticator failures in).
  std::multimap<uint64_t, size_t> auth_by_seq_;
  bool any_auth_relevant_ = false;

  // Shared sig + hash check for one authenticator, whether its seq
  // streamed by (Feed) or was resolved behind a resume watermark.
  void CheckAuthAt(size_t auth_index, const Hash256& log_hash);

  CheckResult chain_fail_;     // First chain-rule/seq failure, entry order.
  size_t auth_fail_idx_;       // Smallest failing authenticator span index.
  CheckResult auth_fail_;
  CheckResult smc_fail_;       // First message-stream failure, entry order.
  CheckResult attested_fail_;  // First attested-input failure, entry order.

  MessageCheckState smc_;
  std::optional<AttestedInputScanner> attested_;
};

// Store-backed full audit with the syntactic check of chunk i+1
// overlapping the replay of chunk i. Requires pool.thread_count() > 1
// and source.LastSeq() >= 1; verdicts (including unreadable-source
// handling and evidence) are identical to the sequential AuditFull.
AuditOutcome PipelinedStreamingAuditFull(const Avmm& target, const SegmentSource& source,
                                         ByteView reference_image,
                                         std::span<const Authenticator> auths,
                                         const KeyRegistry& registry, const AuditConfig& cfg,
                                         ThreadPool& pool);

}  // namespace avm

#endif  // SRC_AUDIT_PIPELINE_H_
