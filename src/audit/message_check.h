// The message-stream state machine of the §4.4/§4.5 syntactic check,
// factored so the same code runs over a materialized segment
// (SyntacticMessageCheck), over a streaming cursor
// (StreamingSyntacticCheck), and over the chunked pipelined audit
// (src/audit/pipeline.h). Feed() consumes entries in log order;
// `sig_verdict` is a precomputed RSA result (-1 = verify inline), so
// the batch path with a pool and every streaming path produce identical
// verdicts at identical seqs.
//
// Batched/async sign modes elide per-message signatures: SEND/RECV
// entries carry an empty payload signature and ACK entries an unsigned
// authenticator. A signature-less SEND needs no extra check (the
// chain + the node's own authenticators already commit it); a
// signature-less RECV or ACK is held *pending* until a PeerCommitRecord
// (logged by the transport when the peer's windowed commitment
// verified) proves the peer's signed chain contains the matching
// SEND(m) / RECV(m). Finalize() fails any entry still unproven at the
// end of a strict scan. Sync-mode logs contain no empty signatures
// under a real scheme and no PeerCommitRecords, so their verdicts are
// bit-for-bit unchanged.
#ifndef SRC_AUDIT_MESSAGE_CHECK_H_
#define SRC_AUDIT_MESSAGE_CHECK_H_

#include <deque>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "src/avmm/message.h"
#include "src/tel/log.h"
#include "src/tel/verifier.h"
#include "src/util/serde.h"

namespace avm {

struct AuditConfig;
class ThreadPool;

// Parses the (MessageRecord, payload_sig) pair stored in SEND/RECV
// entries. Returns false on malformed content.
bool ParseMessageEntry(const LogEntry& e, MessageRecord* msg, Bytes* sig);

// Signature verdicts for one run of entries, indexed by position:
// -1 = nothing precomputed (the sequential scan verifies inline),
// 0/1 = the entry's RSA check failed/passed.
using SigVerdicts = std::vector<int8_t>;

// Fans the per-entry RSA verifications — SEND/RECV payload signatures
// and ACK authenticators — across the pool. Only entries that parse and
// pass their node check are precomputed; those are exactly the entries
// whose signatures the sequential scan would reach, so consuming the
// verdicts in order yields an identical result. (For a segment that
// fails earlier for a non-signature reason this does some wasted
// verifications; verdict-changing it is not.)
SigVerdicts PrecomputeMessageSigVerdicts(const LogSegment& segment, const KeyRegistry& registry,
                                         ThreadPool& pool);

class MessageCheckState {
 public:
  MessageCheckState(NodeId node, const KeyRegistry& registry, bool strict_message_crossref)
      : node_(std::move(node)), registry_(registry), strict_(strict_message_crossref) {}

  CheckResult Feed(const LogEntry& e, int8_t sig_verdict);

  // Strict scans must end with nothing pending: an unproven entry means
  // the log accepted a message no signed commitment ever covered.
  CheckResult Finalize() const;

  // Checkpoint support (src/audit/checkpoint.h): the scan state after
  // feeding entries 1..S, serialized so a later audit can resume at
  // S+1 and produce bit-for-bit the verdict of a from-genesis scan —
  // including checkpoints taken mid-batch-window, where pending
  // RECV/ACK entries are still waiting for a peer commitment.
  void SerializeState(Writer& w) const;
  // Restores into a freshly constructed state (same node/registry/
  // strictness). Throws SerdeError on malformed input.
  void RestoreState(Reader& r);

 private:
  // What a peer's verified batch commitments have proven so far.
  struct PeerProof {
    bool seen = false;
    uint64_t commit_seq = 0;  // Chain position of the last commitment.
    Hash256 commit_hash;
    std::set<Hash256> send_contents;    // H(content) of proven SEND links.
    std::map<uint64_t, Hash256> chain;  // Proven seq -> chain hash.
  };
  struct PendingRecv {
    uint64_t seq;
    NodeId src;
    Hash256 content_hash;
  };
  struct PendingAck {
    uint64_t seq;
    Authenticator auth;
  };

  CheckResult FeedPeerCommit(const LogEntry& e);

  NodeId node_;
  const KeyRegistry& registry_;
  bool strict_;
  // RECV payloads waiting to be delivered into the guest (FIFO).
  std::deque<Bytes> recv_queue_;
  // Tail (bytes after the 4-byte dst header) of the latest guest TX.
  Bytes current_tx_tail_;
  bool have_tx_ = false;
  // msg_ids this node has sent (for ack pairing).
  std::map<std::pair<NodeId, uint64_t>, bool> sent_ids_;
  // Batched-mode bookkeeping.
  std::map<NodeId, PeerProof> peer_proofs_;
  std::vector<PendingRecv> pending_recvs_;
  std::vector<PendingAck> pending_acks_;
};

}  // namespace avm

#endif  // SRC_AUDIT_MESSAGE_CHECK_H_
