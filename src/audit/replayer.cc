#include "src/audit/replayer.h"

#include "src/util/serde.h"

namespace avm {

StreamingReplayer::StreamingReplayer(ByteView reference_image, size_t mem_size)
    : machine_(mem_size, this) {
  machine_.LoadImage(reference_image);
}

StreamingReplayer::StreamingReplayer(const MaterializedState& start)
    : machine_(start.memory.size(), this) {
  machine_.WriteMemRange(0, start.memory);
  machine_.SetCpuState(start.cpu);
  start_icount_ = start.cpu.icount;
}

void StreamingReplayer::Diverge(std::string why, uint64_t seq) {
  if (!result_.ok) {
    return;  // Keep the first divergence.
  }
  result_ = ReplayResult::Fail(std::move(why), seq, machine_.cpu().icount);
}

bool StreamingReplayer::RunTo(uint64_t target, uint64_t ctx_seq) {
  if (machine_.cpu().icount > target) {
    Diverge("event landmark lies in the past; execution diverged earlier", ctx_seq);
    return false;
  }
  if (machine_.cpu().icount == target) {
    return true;
  }
  RunExit ex = machine_.RunUntilIcount(target);
  if (!result_.ok) {
    return false;  // A backend callback detected divergence mid-run.
  }
  if (ex == RunExit::kFault) {
    Diverge("replayed machine faulted: " + machine_.fault_reason(), ctx_seq);
    return false;
  }
  if (machine_.cpu().icount != target) {
    Diverge("replayed machine halted before event landmark", ctx_seq);
    return false;
  }
  return true;
}

uint32_t StreamingReplayer::PortIn(Machine& m, uint16_t port) {
  if (port == kPortIrqCause) {
    return m.cpu().irq_cause;  // Deterministic; never logged.
  }
  if (!result_.ok) {
    return 0;
  }
  if (pending_.empty()) {
    Diverge("guest performed IN(" + std::to_string(port) + ") beyond the end of the log", 0);
    return 0;
  }
  const PendingItem& item = pending_.front();
  if (item.kind != PendingItem::Kind::kEvent || item.event.kind != TraceKind::kPortIn) {
    Diverge("guest performed IN where the log records " +
                std::string(item.kind == PendingItem::Kind::kEvent ? TraceKindName(item.event.kind)
                                                                   : "a snapshot"),
            item.seq);
    return 0;
  }
  if (item.event.port != port) {
    Diverge("IN port mismatch: log says " + std::to_string(item.event.port) + ", guest read " +
                std::to_string(port),
            item.seq);
    return 0;
  }
  if (item.event.icount != m.cpu().icount) {
    Diverge("IN landmark mismatch: log says icount " + std::to_string(item.event.icount) +
                ", guest is at " + std::to_string(m.cpu().icount),
            item.seq);
    return 0;
  }
  uint32_t value = item.event.value;
  pending_.pop_front();
  return value;
}

void StreamingReplayer::PortOut(Machine& m, uint16_t port, uint32_t value) {
  if (!result_.ok) {
    return;
  }
  TraceKind expect_kind;
  switch (port) {
    case kPortConsole:
      expect_kind = TraceKind::kOutConsole;
      break;
    case kPortDebug:
      expect_kind = TraceKind::kOutDebug;
      break;
    case kPortNetTxLen:
      if (value < 4 || value > kMaxPacket) {
        return;  // The recording NIC dropped it without logging; mirror that.
      }
      expect_kind = TraceKind::kOutPacket;
      break;
    case kPortFrame:
    case kPortNetRxDone:
    default:
      return;  // Not logged during recording; nothing to check.
  }

  if (pending_.empty()) {
    Diverge("guest produced output beyond the end of the log", 0);
    return;
  }
  const PendingItem& item = pending_.front();
  if (item.kind != PendingItem::Kind::kEvent || item.event.kind != expect_kind) {
    Diverge(std::string("guest output ") + TraceKindName(expect_kind) +
                " where the log records something else",
            item.seq);
    return;
  }
  if (item.event.icount != m.cpu().icount) {
    Diverge("output landmark mismatch", item.seq);
    return;
  }
  if (expect_kind == TraceKind::kOutPacket) {
    Bytes tx = m.ReadMemRange(kNetTxBuf, value);
    if (!BytesEqual(tx, item.event.data)) {
      Diverge("transmitted packet differs from the logged packet", item.seq);
      return;
    }
  } else if ((item.event.value & 0xffffffffu) !=
             (expect_kind == TraceKind::kOutConsole ? (value & 0xff) : value)) {
    Diverge("output value differs from the log", item.seq);
    return;
  }
  pending_.pop_front();
}

void StreamingReplayer::Pump() {
  while (result_.ok && !pending_.empty()) {
    PendingItem item = pending_.front();
    if (item.kind == PendingItem::Kind::kSnapshotCheck) {
      if (!RunTo(item.snapshot.icount, item.seq)) {
        return;
      }
      Hash256 root = ComputeStateRoot(machine_);
      if (root != item.snapshot.root) {
        Diverge("snapshot root mismatch: logged " + item.snapshot.root.ShortHex() + ", replayed " +
                    root.ShortHex(),
                item.seq);
        return;
      }
      pending_.pop_front();
      continue;
    }

    const TraceEvent& e = item.event;
    switch (e.kind) {
      case TraceKind::kDmaPacket:
        if (!RunTo(e.icount, item.seq)) {
          return;
        }
        machine_.WriteMemRange(kNetRxBuf, e.data);
        if (e.value & 1) {
          machine_.RaiseIrq(kIrqNetRx);
        }
        pending_.pop_front();
        break;
      case TraceKind::kAsyncIrq:
        if (!RunTo(e.icount, item.seq)) {
          return;
        }
        machine_.RaiseIrq(e.value);
        pending_.pop_front();
        break;
      case TraceKind::kClockStall:
        // A §6.5 stall: the recorder jumped icount by e.value right
        // after the clock read at e.icount retired. Reproduce the jump
        // (adding it before or after the read's own icount++ commutes,
        // so applying it here, post-retirement, lands on the identical
        // instruction counter).
        if (machine_.cpu().icount != e.icount + 1) {
          Diverge("clock stall not adjacent to its clock read", item.seq);
          return;
        }
        machine_.mutable_cpu().icount += e.value;
        pending_.pop_front();
        break;
      case TraceKind::kPortIn:
      case TraceKind::kOutConsole:
      case TraceKind::kOutDebug:
      case TraceKind::kOutPacket: {
        // Guest-initiated: position just before the recorded instruction,
        // then execute it; the backend callback consumes the item.
        if (!RunTo(e.icount, item.seq)) {
          return;
        }
        size_t before = pending_.size();
        RunExit ex = machine_.Run(1);
        if (!result_.ok) {
          return;
        }
        if (ex == RunExit::kFault) {
          Diverge("replayed machine faulted: " + machine_.fault_reason(), item.seq);
          return;
        }
        if (pending_.size() == before) {
          Diverge("expected I/O instruction did not occur during replay", item.seq);
          return;
        }
        break;
      }
    }
  }
}

ReplayResult StreamingReplayer::Feed(std::span<const LogEntry> entries) {
  WallTimer timer;
  for (const LogEntry& entry : entries) {
    if (!result_.ok) {
      break;
    }
    switch (entry.type) {
      case EntryType::kTraceTime:
      case EntryType::kTraceMac:
      case EntryType::kTraceOther: {
        PendingItem item;
        item.kind = PendingItem::Kind::kEvent;
        item.seq = entry.seq;
        try {
          item.event = TraceEvent::Deserialize(entry.content);
        } catch (const SerdeError& e) {
          Diverge(std::string("malformed trace entry: ") + e.what(), entry.seq);
          break;
        }
        pending_.push_back(std::move(item));
        break;
      }
      case EntryType::kSnapshot: {
        PendingItem item;
        item.kind = PendingItem::Kind::kSnapshotCheck;
        item.seq = entry.seq;
        try {
          item.snapshot = SnapshotMeta::Deserialize(entry.content);
        } catch (const SerdeError& e) {
          Diverge(std::string("malformed snapshot entry: ") + e.what(), entry.seq);
          break;
        }
        pending_.push_back(std::move(item));
        break;
      }
      case EntryType::kSend:
      case EntryType::kRecv:
      case EntryType::kAck:
      case EntryType::kInfo:
        break;  // Message-stream entries are the syntactic check's domain.
    }
  }
  Pump();
  result_.replay_seconds += timer.ElapsedSeconds();
  result_.replay_icount = machine_.cpu().icount;
  result_.instructions_replayed = machine_.cpu().icount - start_icount_;
  return result_;
}

ReplayResult StreamingReplayer::Finish() {
  finished_ = true;
  if (result_.ok && !pending_.empty()) {
    Diverge("log ended with unconsumed events", pending_.front().seq);
  }
  result_.replay_icount = machine_.cpu().icount;
  result_.instructions_replayed = machine_.cpu().icount - start_icount_;
  return result_;
}

ReplayResult ReplaySegment(const LogSegment& segment, ByteView reference_image, size_t mem_size) {
  StreamingReplayer r(reference_image, mem_size);
  r.Feed(segment.entries);
  return r.Finish();
}

ReplayResult ReplaySegment(const LogSegment& segment, const MaterializedState& start) {
  StreamingReplayer r(start);
  r.Feed(segment.entries);
  return r.Finish();
}

}  // namespace avm
