#include "src/audit/fleet.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "src/avmm/recorder.h"
#include "src/util/threadpool.h"

namespace avm {

const char* FleetJobTypeName(FleetJobType t) {
  switch (t) {
    case FleetJobType::kFullAudit:
      return "full-audit";
    case FleetJobType::kSpotCheck:
      return "spot-check";
    case FleetJobType::kOnlinePoll:
      return "online-poll";
  }
  return "?";
}

FleetAuditService::FleetAuditService(const KeyRegistry* registry, FleetAuditConfig cfg)
    : registry_(registry), cfg_(cfg), paused_(cfg.start_paused) {
  // A fleet scales by sharding jobs; a job defaulting to "one thread
  // per core" on top of that would oversubscribe every worker. Within-
  // job pools are an explicit opt-in (cfg.audit.threads > 1).
  if (cfg_.audit.threads == 0) {
    cfg_.audit.threads = 1;
  }
  unsigned workers = ResolveThreads(cfg_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

FleetAuditService::~FleetAuditService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void FleetAuditService::RegisterAuditee(Registration reg) {
  if (reg.source == nullptr || reg.target == nullptr) {
    throw std::invalid_argument("FleetAuditService: registration needs a target and a source");
  }
  std::unique_lock<std::mutex> lock(mu_);
  auto it = auditees_.find(reg.node);
  if (it != auditees_.end() && (it->second.running || !it->second.queue.empty())) {
    throw std::logic_error("FleetAuditService: auditee has jobs in flight: " + reg.node);
  }
  Auditee& a = auditees_[reg.node];
  a.reg = std::move(reg);
  a.online.reset();  // A re-registration invalidates the replay session.
}

void FleetAuditService::UpdateAuths(const NodeId& node, std::vector<Authenticator> auths) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = auditees_.find(node);
  if (it == auditees_.end()) {
    throw std::out_of_range("FleetAuditService: unknown auditee " + node);
  }
  if (it->second.running || !it->second.queue.empty()) {
    throw std::logic_error("FleetAuditService: auditee has jobs in flight: " + node);
  }
  it->second.reg.auths = std::move(auths);
}

size_t FleetAuditService::auditee_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return auditees_.size();
}

uint64_t FleetAuditService::Submit(const NodeId& node, Job job) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = auditees_.find(node);
  if (it == auditees_.end()) {
    throw std::out_of_range("FleetAuditService: unknown auditee " + node);
  }
  job.id = next_job_id_++;
  job.submit_index = submit_counter_++;
  it->second.queue.push_back(job);
  outstanding_++;
  lock.unlock();
  work_cv_.notify_one();
  return job.id;
}

uint64_t FleetAuditService::SubmitFullAudit(const NodeId& node, FleetPriority priority) {
  Job j;
  j.type = FleetJobType::kFullAudit;
  j.priority = priority;
  return Submit(node, j);
}

uint64_t FleetAuditService::SubmitSpotCheck(const NodeId& node, uint64_t from_snapshot_id,
                                            uint64_t to_snapshot_id, FleetPriority priority) {
  Job j;
  j.type = FleetJobType::kSpotCheck;
  j.priority = priority;
  j.from_snapshot = from_snapshot_id;
  j.to_snapshot = to_snapshot_id;
  return Submit(node, j);
}

uint64_t FleetAuditService::SubmitOnlinePoll(const NodeId& node, FleetPriority priority) {
  Job j;
  j.type = FleetJobType::kOnlinePoll;
  j.priority = priority;
  return Submit(node, j);
}

void FleetAuditService::Resume() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void FleetAuditService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

std::optional<FleetJobResult> FleetAuditService::Result(uint64_t job_id) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = results_.find(job_id);
  if (it == results_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<FleetJobResult> FleetAuditService::ResultsFor(const NodeId& node) const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<FleetJobResult> out;
  for (const auto& [id, r] : results_) {
    if (r.node == node) {
      out.push_back(r);
    }
  }
  return out;
}

FleetStats FleetAuditService::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

bool FleetAuditService::PickJob(Auditee** auditee, Job* job) {
  if (paused_) {
    return false;
  }
  // Fairness policy: consider only auditees with no job in flight; for
  // each, its best queued job is the lowest (priority, submit_index).
  // Across auditees, pick the best priority; break ties by
  // least-recently-served, then by submission order (deterministic for
  // the tests regardless of worker count).
  Auditee* best_a = nullptr;
  const Job* best_j = nullptr;
  size_t best_pos = 0;
  for (auto& [node, a] : auditees_) {
    if (a.running || a.queue.empty()) {
      continue;
    }
    const Job* cand = nullptr;
    size_t cand_pos = 0;
    for (size_t i = 0; i < a.queue.size(); i++) {
      const Job& q = a.queue[i];
      if (cand == nullptr || q.priority < cand->priority ||
          (q.priority == cand->priority && q.submit_index < cand->submit_index)) {
        cand = &q;
        cand_pos = i;
      }
    }
    if (best_j == nullptr || cand->priority < best_j->priority ||
        (cand->priority == best_j->priority &&
         (a.last_served < best_a->last_served ||
          (a.last_served == best_a->last_served &&
           cand->submit_index < best_j->submit_index)))) {
      best_a = &a;
      best_j = cand;
      best_pos = cand_pos;
    }
  }
  if (best_j == nullptr) {
    return false;
  }
  *job = *best_j;
  best_a->queue.erase(best_a->queue.begin() + static_cast<ptrdiff_t>(best_pos));
  best_a->running = true;
  best_a->last_served = ++serve_counter_;
  *auditee = best_a;
  return true;
}

FleetJobResult FleetAuditService::RunJob(Auditee& auditee, const Job& job) {
  // Snapshot what the job needs under the caller's lock discipline:
  // the registration cannot change while this auditee is `running`.
  const Registration& reg = auditee.reg;
  const KeyRegistry* registry = reg.registry != nullptr ? reg.registry : registry_;
  AuditConfig acfg = cfg_.audit;
  if (reg.mem_size != 0) {
    acfg.mem_size = reg.mem_size;
  }

  FleetJobResult r;
  r.job_id = job.id;
  r.node = reg.node;
  r.type = job.type;
  r.priority = job.priority;
  WallTimer timer;
  switch (job.type) {
    case FleetJobType::kFullAudit: {
      CheckpointConfig ckpt = cfg_.checkpoint;
      ckpt.aux_store = reg.checkpoint_store;
      CheckpointedAuditor auditor(ckpt.auditor, registry, acfg, ckpt);
      const std::string dir = cfg_.resume_from_checkpoints ? reg.checkpoint_dir : std::string();
      r.outcome = auditor.AuditFull(*reg.target, *reg.source, reg.reference_image, reg.auths,
                                    dir, &r.resume);
      break;
    }
    case FleetJobType::kSpotCheck: {
      Auditor auditor(cfg_.checkpoint.auditor, registry, acfg);
      r.outcome = auditor.SpotCheck(*reg.target, *reg.source, job.from_snapshot,
                                    job.to_snapshot, reg.auths);
      break;
    }
    case FleetJobType::kOnlinePoll: {
      if (auditee.online == nullptr) {
        auditee.online =
            std::make_unique<OnlineAuditor>(reg.source, ByteView(reg.reference_image),
                                            acfg.mem_size);
      }
      r.online = auditee.online->Poll();
      r.online_status = auditee.online->status();
      r.online_lag_entries = auditee.online->LagEntries();
      break;
    }
  }
  r.seconds = timer.ElapsedSeconds();
  return r;
}

void FleetAuditService::WorkerLoop() {
  for (;;) {
    Auditee* auditee = nullptr;
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || PickJob(&auditee, &job); });
      if (auditee == nullptr) {
        return;  // stopping_ and nothing runnable for this worker.
      }
    }

    FleetJobResult result;
    try {
      result = RunJob(*auditee, job);
    } catch (const std::exception& e) {
      // A job must never take the service (or Drain()) down with it:
      // an unwritable store, a hostile log that defeats the audit's own
      // exception handling — the job fails, the worker survives.
      result.job_id = job.id;
      result.node = auditee->reg.node;
      result.type = job.type;
      result.priority = job.priority;
      result.outcome.ok = false;
      result.outcome.syntactic =
          CheckResult::Fail(std::string("audit job aborted: ") + e.what());
    }

    {
      std::unique_lock<std::mutex> lock(mu_);
      auditee->running = false;
      result.completion_index = completion_counter_++;
      stats_.jobs_completed++;
      switch (result.type) {
        case FleetJobType::kFullAudit:
          stats_.full_audits++;
          if (result.resume.resumed) {
            stats_.audits_resumed++;
            stats_.entries_skipped += result.resume.resumed_from;
          } else {
            stats_.audits_cold++;
          }
          if (result.resume.checkpoint_rejected) {
            stats_.checkpoints_rejected++;
          }
          stats_.checkpoints_written += result.resume.checkpoints_written;
          stats_.entries_scanned += result.resume.entries_scanned;
          if (!result.outcome.ok) {
            stats_.faults_detected++;
          }
          break;
        case FleetJobType::kSpotCheck:
          stats_.spot_checks++;
          if (!result.outcome.ok) {
            stats_.faults_detected++;
          }
          break;
        case FleetJobType::kOnlinePoll:
          stats_.online_polls++;
          if (result.online_status == OnlinePollStatus::kDiverged) {
            stats_.faults_detected++;
          }
          if (result.online_status == OnlinePollStatus::kTargetRewound) {
            stats_.targets_rewound++;
          }
          break;
      }
      results_[result.job_id] = std::move(result);
      outstanding_--;
      if (outstanding_ == 0) {
        idle_cv_.notify_all();
      }
    }
    // Another auditee may have become runnable while this one ran.
    work_cv_.notify_one();
  }
}

}  // namespace avm
