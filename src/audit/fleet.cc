#include "src/audit/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/avmm/recorder.h"
#include "src/chaos/fault_plan.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/util/threadpool.h"

namespace avm {

const char* FleetJobTypeName(FleetJobType t) {
  switch (t) {
    case FleetJobType::kFullAudit:
      return "full-audit";
    case FleetJobType::kSpotCheck:
      return "spot-check";
    case FleetJobType::kOnlinePoll:
      return "online-poll";
  }
  return "?";
}

FleetAuditService::FleetAuditService(const KeyRegistry* registry, FleetAuditConfig cfg)
    : registry_(registry), cfg_(cfg), paused_(cfg.start_paused) {
  // A fleet scales by sharding jobs; a job defaulting to "one thread
  // per core" on top of that would oversubscribe every worker. Within-
  // job pools are an explicit opt-in (cfg.audit.threads > 1).
  if (cfg_.audit.threads == 0) {
    cfg_.audit.threads = 1;
  }
  RegisterObsMetrics();
  unsigned workers = ResolveThreads(cfg_.workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void FleetAuditService::RegisterObsMetrics() {
  // Distinct {svc} label per instance: the registry is process-wide,
  // but stats() must report this service's work only.
  static std::atomic<uint64_t> next_serial{0};
  svc_label_ = std::to_string(next_serial.fetch_add(1, std::memory_order_relaxed));
  auto& reg = obs::Registry::Global();
  const obs::Labels ls{{"svc", svc_label_}};
  obs_.jobs_completed = reg.GetCounter("fleet_jobs_completed", ls);
  obs_.full_audits = reg.GetCounter("fleet_full_audits", ls);
  obs_.spot_checks = reg.GetCounter("fleet_spot_checks", ls);
  obs_.online_polls = reg.GetCounter("fleet_online_polls", ls);
  obs_.audits_resumed = reg.GetCounter("fleet_audits_resumed", ls);
  obs_.audits_cold = reg.GetCounter("fleet_audits_cold", ls);
  obs_.checkpoints_written = reg.GetCounter("fleet_checkpoints_written", ls);
  obs_.checkpoints_rejected = reg.GetCounter("fleet_checkpoints_rejected", ls);
  obs_.entries_scanned = reg.GetCounter("fleet_entries_scanned", ls);
  obs_.entries_skipped = reg.GetCounter("fleet_entries_skipped", ls);
  obs_.faults_detected = reg.GetCounter("fleet_faults_detected", ls);
  obs_.targets_rewound = reg.GetCounter("fleet_targets_rewound", ls);
  obs_.jobs_failed = reg.GetCounter("fleet_jobs_failed", ls);
  obs_.job_retries = reg.GetCounter("fleet_job_retries", ls);
  obs_.quarantines = reg.GetCounter("fleet_quarantines", ls);
  obs_.quarantine_releases = reg.GetCounter("fleet_quarantine_releases", ls);
  obs_.store_recoveries = reg.GetCounter("fleet_store_recoveries", ls);
  obs_.degraded_results = reg.GetCounter("fleet_degraded_results", ls);
  obs_.retry_backoff_us = reg.GetHistogram("fleet_retry_backoff_us", ls);
  obs_.quarantined_auditees = reg.GetGauge("fleet_quarantined_auditees", ls);
  for (int t = 0; t < 3; t++) {
    const obs::Labels lt{{"svc", svc_label_},
                         {"type", FleetJobTypeName(static_cast<FleetJobType>(t))}};
    obs_.queue_wait_us[t] = reg.GetHistogram("fleet_queue_wait_us", lt);
    obs_.service_us[t] = reg.GetHistogram("fleet_service_us", lt);
  }
}

FleetAuditService::~FleetAuditService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void FleetAuditService::RegisterAuditee(Registration reg) {
  if (reg.source == nullptr || reg.target == nullptr) {
    throw std::invalid_argument("FleetAuditService: registration needs a target and a source");
  }
  std::unique_lock<std::mutex> lock(mu_);
  auto it = auditees_.find(reg.node);
  if (it != auditees_.end() && (it->second.running || !it->second.queue.empty())) {
    throw std::logic_error("FleetAuditService: auditee has jobs in flight: " + reg.node);
  }
  Auditee& a = auditees_[reg.node];
  a.reg = std::move(reg);
  a.online.reset();  // A re-registration invalidates the replay session.
}

void FleetAuditService::UpdateAuths(const NodeId& node, std::vector<Authenticator> auths) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = auditees_.find(node);
  if (it == auditees_.end()) {
    throw std::out_of_range("FleetAuditService: unknown auditee " + node);
  }
  if (it->second.running || !it->second.queue.empty()) {
    throw std::logic_error("FleetAuditService: auditee has jobs in flight: " + node);
  }
  it->second.reg.auths = std::move(auths);
}

size_t FleetAuditService::auditee_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return auditees_.size();
}

uint64_t FleetAuditService::Submit(const NodeId& node, Job job) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = auditees_.find(node);
  if (it == auditees_.end()) {
    throw std::out_of_range("FleetAuditService: unknown auditee " + node);
  }
  job.id = next_job_id_++;
  job.submit_index = submit_counter_++;
  if (obs::Enabled()) {
    job.submit_us = obs::NowMicros();
  }
  it->second.queue.push_back(job);
  outstanding_++;
  lock.unlock();
  work_cv_.notify_one();
  return job.id;
}

uint64_t FleetAuditService::SubmitFullAudit(const NodeId& node, FleetPriority priority) {
  Job j;
  j.type = FleetJobType::kFullAudit;
  j.priority = priority;
  return Submit(node, j);
}

uint64_t FleetAuditService::SubmitSpotCheck(const NodeId& node, uint64_t from_snapshot_id,
                                            uint64_t to_snapshot_id, FleetPriority priority) {
  Job j;
  j.type = FleetJobType::kSpotCheck;
  j.priority = priority;
  j.from_snapshot = from_snapshot_id;
  j.to_snapshot = to_snapshot_id;
  return Submit(node, j);
}

uint64_t FleetAuditService::SubmitOnlinePoll(const NodeId& node, FleetPriority priority) {
  Job j;
  j.type = FleetJobType::kOnlinePoll;
  j.priority = priority;
  return Submit(node, j);
}

void FleetAuditService::Resume() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void FleetAuditService::Kick() {
  work_cv_.notify_all();
}

void FleetAuditService::Rehabilitate(const NodeId& node) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = auditees_.find(node);
    if (it == auditees_.end()) {
      throw std::out_of_range("FleetAuditService: unknown auditee " + node);
    }
    Auditee& a = it->second;
    if (a.quarantined) {
      a.quarantined = false;
      obs_.quarantine_releases->Inc();
      obs_.quarantined_auditees->Add(-1);
    }
    a.consecutive_errors = 0;
    a.quarantine_until_us = 0;
    a.last_error.clear();
  }
  work_cv_.notify_all();
}

uint64_t FleetAuditService::NowUs() const {
  if (cfg_.clock) {
    return cfg_.clock();
  }
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

uint64_t FleetAuditService::NextDueLocked() const {
  uint64_t due = std::numeric_limits<uint64_t>::max();
  for (const auto& [node, a] : auditees_) {
    if (a.running || a.queue.empty() || a.quarantined) {
      // Quarantined auditees answer immediately (degraded); they never
      // make a worker wait on time.
      continue;
    }
    for (const Job& q : a.queue) {
      due = std::min(due, q.not_before_us);
    }
  }
  return due;
}

void FleetAuditService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

std::optional<FleetJobResult> FleetAuditService::Result(uint64_t job_id) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = results_.find(job_id);
  if (it == results_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<FleetJobResult> FleetAuditService::ResultsFor(const NodeId& node) const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<FleetJobResult> out;
  for (const auto& [id, r] : results_) {
    if (r.node == node) {
      out.push_back(r);
    }
  }
  return out;
}

FleetStats FleetAuditService::stats() const {
  // Compatibility view over this instance's registry counters. No mu_:
  // counter reads are atomic, and the legacy contract was only ever a
  // point-in-time snapshot.
  FleetStats s;
  s.jobs_completed = obs_.jobs_completed->Value();
  s.full_audits = obs_.full_audits->Value();
  s.spot_checks = obs_.spot_checks->Value();
  s.online_polls = obs_.online_polls->Value();
  s.audits_resumed = obs_.audits_resumed->Value();
  s.audits_cold = obs_.audits_cold->Value();
  s.checkpoints_written = obs_.checkpoints_written->Value();
  s.checkpoints_rejected = obs_.checkpoints_rejected->Value();
  s.entries_scanned = obs_.entries_scanned->Value();
  s.entries_skipped = obs_.entries_skipped->Value();
  s.faults_detected = obs_.faults_detected->Value();
  s.targets_rewound = obs_.targets_rewound->Value();
  s.jobs_failed = obs_.jobs_failed->Value();
  s.job_retries = obs_.job_retries->Value();
  s.quarantines = obs_.quarantines->Value();
  s.quarantine_releases = obs_.quarantine_releases->Value();
  s.store_recoveries = obs_.store_recoveries->Value();
  s.degraded_results = obs_.degraded_results->Value();
  {
    std::unique_lock<std::mutex> lock(mu_);
    s.last_error = last_error_;
  }
  return s;
}

std::string FleetAuditService::MetricsPrometheus() const {
  return obs::PrometheusText(obs::Registry::Global().Snapshot());
}

std::string FleetAuditService::MetricsSnapshotJson() const {
  return obs::SnapshotJson();
}

bool FleetAuditService::ExportPrometheus(const std::string& path, std::string* error) const {
  return obs::WritePrometheus(path, error);
}

bool FleetAuditService::ExportSnapshotJson(const std::string& path, std::string* error) const {
  return obs::WriteSnapshotJson(path, error);
}

bool FleetAuditService::ExportChromeTrace(const std::string& path, std::string* error) const {
  return obs::WriteChromeTrace(path, error);
}

bool FleetAuditService::PickJob(Auditee** auditee, Job* job, bool* degraded,
                                std::string* degraded_error) {
  if (paused_) {
    return false;
  }
  const uint64_t now = NowUs();
  // Fairness policy: consider only auditees with no job in flight; for
  // each, its best queued job is the lowest (priority, submit_index).
  // Across auditees, pick the best priority; break ties by
  // least-recently-served, then by submission order (deterministic for
  // the tests regardless of worker count). Jobs still waiting out a
  // retry backoff are invisible to this pass.
  Auditee* best_a = nullptr;
  const Job* best_j = nullptr;
  size_t best_pos = 0;
  for (auto& [node, a] : auditees_) {
    if (a.running || a.queue.empty()) {
      continue;
    }
    if (a.quarantined && cfg_.retry.quarantine_release_us > 0 && a.quarantine_until_us <= now) {
      // Timed quarantine expired: the auditee gets a fresh start.
      a.quarantined = false;
      a.consecutive_errors = 0;
      obs_.quarantine_releases->Inc();
      obs_.quarantined_auditees->Add(-1);
    }
    const Job* cand = nullptr;
    size_t cand_pos = 0;
    for (size_t i = 0; i < a.queue.size(); i++) {
      const Job& q = a.queue[i];
      if (!a.quarantined && q.not_before_us > now) {
        continue;  // Quarantined jobs answer degraded immediately.
      }
      if (cand == nullptr || q.priority < cand->priority ||
          (q.priority == cand->priority && q.submit_index < cand->submit_index)) {
        cand = &q;
        cand_pos = i;
      }
    }
    if (cand == nullptr) {
      continue;
    }
    if (best_j == nullptr || cand->priority < best_j->priority ||
        (cand->priority == best_j->priority &&
         (a.last_served < best_a->last_served ||
          (a.last_served == best_a->last_served &&
           cand->submit_index < best_j->submit_index)))) {
      best_a = &a;
      best_j = cand;
      best_pos = cand_pos;
    }
  }
  if (best_j == nullptr) {
    return false;
  }
  *job = *best_j;
  best_a->queue.erase(best_a->queue.begin() + static_cast<ptrdiff_t>(best_pos));
  best_a->running = true;
  best_a->last_served = ++serve_counter_;
  *auditee = best_a;
  *degraded = best_a->quarantined;
  if (best_a->quarantined) {
    *degraded_error = "auditee quarantined after " +
                      std::to_string(best_a->consecutive_errors) +
                      " consecutive job errors; last: " + best_a->last_error;
  }
  return true;
}

FleetJobResult FleetAuditService::RunJob(Auditee& auditee, const Job& job) {
  // Snapshot what the job needs under the caller's lock discipline:
  // the registration cannot change while this auditee is `running`.
  const Registration& reg = auditee.reg;
  const KeyRegistry* registry = reg.registry != nullptr ? reg.registry : registry_;
  AuditConfig acfg = cfg_.audit;
  if (reg.mem_size != 0) {
    acfg.mem_size = reg.mem_size;
  }

  FleetJobResult r;
  r.job_id = job.id;
  r.node = reg.node;
  r.type = job.type;
  r.priority = job.priority;
  WallTimer timer;
  obs::Span span(obs::kPhaseFleetService, "fleet");
  switch (job.type) {
    case FleetJobType::kFullAudit: {
      CheckpointConfig ckpt = cfg_.checkpoint;
      ckpt.aux_store = reg.checkpoint_store;
      CheckpointedAuditor auditor(ckpt.auditor, registry, acfg, ckpt);
      const std::string dir = cfg_.resume_from_checkpoints ? reg.checkpoint_dir : std::string();
      r.outcome = auditor.AuditFull(*reg.target, *reg.source, reg.reference_image, reg.auths,
                                    dir, &r.resume);
      break;
    }
    case FleetJobType::kSpotCheck: {
      Auditor auditor(cfg_.checkpoint.auditor, registry, acfg);
      r.outcome = auditor.SpotCheck(*reg.target, *reg.source, job.from_snapshot,
                                    job.to_snapshot, reg.auths);
      break;
    }
    case FleetJobType::kOnlinePoll: {
      if (auditee.online == nullptr) {
        auditee.online =
            std::make_unique<OnlineAuditor>(reg.source, ByteView(reg.reference_image),
                                            acfg.mem_size);
      }
      r.online = auditee.online->Poll();
      r.online_status = auditee.online->status();
      r.online_lag_entries = auditee.online->LagEntries();
      // §6.11: the fleet's view of how far behind each auditee's replay
      // is, scrapable without polling Result().
      obs::Registry::Global()
          .GetGauge("fleet_online_lag_entries",
                    {{"node", reg.node}, {"svc", svc_label_}})
          ->Set(static_cast<int64_t>(r.online_lag_entries));
      break;
    }
  }
  span.End();
  r.seconds = timer.ElapsedSeconds();
  obs_.service_us[static_cast<int>(job.type)]->Record(
      static_cast<uint64_t>(r.seconds * 1e6));
  return r;
}

void FleetAuditService::WorkerLoop() {
  for (;;) {
    Auditee* auditee = nullptr;
    Job job;
    bool degraded = false;
    std::string degraded_error;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (stopping_) {
          return;
        }
        if (PickJob(&auditee, &job, &degraded, &degraded_error)) {
          break;
        }
        const uint64_t due = NextDueLocked();
        if (cfg_.clock || due == std::numeric_limits<uint64_t>::max()) {
          // Nothing waiting on time, or a virtual clock whose advance
          // this thread cannot observe: sleep until Submit()/Kick().
          work_cv_.wait(lock);
        } else {
          const uint64_t now = NowUs();
          work_cv_.wait_for(lock, std::chrono::microseconds(due > now ? due - now : 1));
        }
      }
    }
    if (job.submit_us != 0) {
      obs_.queue_wait_us[static_cast<int>(job.type)]->Record(
          obs::NowMicros() - job.submit_us);
    }

    FleetJobResult result;
    bool failed = false;
    std::string error;
    if (degraded) {
      // A quarantined auditee still gets an answer for every submitted
      // job — an explicit degraded failure, never a silent pass and
      // never a hang.
      failed = true;
      error = degraded_error;
    } else {
      try {
        // The attempt timer spans the injected stall too: a slow-peer
        // stall is exactly what a per-job timeout exists to catch.
        WallTimer attempt_timer;
        // Injected faults for this attempt (chaos plan and/or test hook).
        bool kill = false;
        uint64_t stall_us = 0;
        std::string what;
        if (cfg_.fault_hook) {
          FleetJobFault f = cfg_.fault_hook(auditee->reg.node, job.type, job.attempt);
          stall_us += f.stall_us;
          if (f.fail) {
            kill = true;
            what = f.what;
          }
        }
        if (cfg_.chaos != nullptr) {
          chaos::JobFault f =
              cfg_.chaos->OnAuditJob(auditee->reg.node, FleetJobTypeName(job.type), job.attempt);
          stall_us += f.stall_us;
          if (f.fail && !kill) {
            kill = true;
            what = f.what;
          }
        }
        if (stall_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(stall_us));
        }
        if (kill) {
          throw std::runtime_error(what.empty() ? "injected worker death" : what);
        }
        result = RunJob(*auditee, job);
        const double attempt_us = attempt_timer.ElapsedSeconds() * 1e6;
        if (cfg_.retry.job_timeout_us > 0 &&
            attempt_us > static_cast<double>(cfg_.retry.job_timeout_us)) {
          failed = true;
          error = "job exceeded timeout of " + std::to_string(cfg_.retry.job_timeout_us) +
                  "us (ran " + std::to_string(static_cast<uint64_t>(attempt_us)) + "us)";
        }
      } catch (const std::exception& e) {
        // A job must never take the service (or Drain()) down with it:
        // an unwritable store, a hostile log that defeats the audit's
        // own exception handling — the job fails, the worker survives.
        failed = true;
        error = e.what();
      } catch (...) {
        failed = true;
        error = "unknown non-standard exception";
      }
    }

    const unsigned max_attempts = std::max(1u, cfg_.retry.max_attempts);
    if (failed && !degraded && job.attempt < max_attempts) {
      // Give the owner a chance to repair the auditee before the retry;
      // reopening a poisoned store does real IO, so call outside mu_
      // (the registration cannot change while the auditee is running).
      const SegmentSource* new_source = nullptr;
      LogStore* new_store = nullptr;
      if (auditee->reg.recover_source) {
        RecoveredSource rs = auditee->reg.recover_source();
        new_source = rs.source;
        new_store = rs.checkpoint_store;
      }
      double raw = static_cast<double>(cfg_.retry.backoff_initial_us) *
                   std::pow(cfg_.retry.backoff_multiplier, static_cast<double>(job.attempt - 1));
      uint64_t backoff = cfg_.retry.backoff_max_us;
      if (raw < static_cast<double>(cfg_.retry.backoff_max_us)) {
        backoff = static_cast<uint64_t>(raw);
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (new_source != nullptr) {
          auditee->reg.source = new_source;
          if (new_store != nullptr) {
            auditee->reg.checkpoint_store = new_store;
          }
          auditee->online.reset();  // The replay session pinned the old source.
          obs_.store_recoveries->Inc();
        }
        auditee->running = false;
        Job retry = job;
        retry.attempt++;
        retry.backoffs_us.push_back(backoff);
        retry.not_before_us = NowUs() + backoff;
        auditee->queue.push_back(std::move(retry));
        obs_.job_retries->Inc();
        obs_.retry_backoff_us->Record(backoff);
        last_error_ = error;
      }
      // outstanding_ is unchanged: the job is still in flight.
      work_cv_.notify_all();
      continue;
    }

    if (failed) {
      FleetJobResult r;
      r.job_id = job.id;
      r.node = auditee->reg.node;
      r.type = job.type;
      r.priority = job.priority;
      r.job_error = true;
      r.quarantined = degraded;
      r.error = error;
      r.outcome.ok = false;
      r.outcome.syntactic = CheckResult::Fail("audit job aborted: " + error);
      result = std::move(r);
    }
    result.attempts = job.attempt;
    result.backoffs_us = job.backoffs_us;

    {
      std::unique_lock<std::mutex> lock(mu_);
      auditee->running = false;
      result.completion_index = completion_counter_++;
      obs_.jobs_completed->Inc();
      if (failed) {
        obs_.jobs_failed->Inc();
        last_error_ = error;
        if (degraded) {
          obs_.degraded_results->Inc();
        } else {
          auditee->consecutive_errors++;
          auditee->last_error = error;
          if (cfg_.retry.quarantine_after > 0 && !auditee->quarantined &&
              auditee->consecutive_errors >= cfg_.retry.quarantine_after) {
            auditee->quarantined = true;
            auditee->quarantine_until_us =
                cfg_.retry.quarantine_release_us > 0
                    ? NowUs() + cfg_.retry.quarantine_release_us
                    : std::numeric_limits<uint64_t>::max();
            obs_.quarantines->Inc();
            obs_.quarantined_auditees->Add(1);
          }
        }
      } else {
        auditee->consecutive_errors = 0;
        auditee->last_error.clear();
      }
      switch (result.type) {
        case FleetJobType::kFullAudit:
          obs_.full_audits->Inc();
          if (result.resume.resumed) {
            obs_.audits_resumed->Inc();
            obs_.entries_skipped->Inc(result.resume.resumed_from);
          } else {
            obs_.audits_cold->Inc();
          }
          if (result.resume.checkpoint_rejected) {
            obs_.checkpoints_rejected->Inc();
          }
          obs_.checkpoints_written->Inc(result.resume.checkpoints_written);
          obs_.entries_scanned->Inc(result.resume.entries_scanned);
          if (!result.outcome.ok) {
            obs_.faults_detected->Inc();
          }
          break;
        case FleetJobType::kSpotCheck:
          obs_.spot_checks->Inc();
          if (!result.outcome.ok) {
            obs_.faults_detected->Inc();
          }
          break;
        case FleetJobType::kOnlinePoll:
          obs_.online_polls->Inc();
          if (result.online_status == OnlinePollStatus::kDiverged) {
            obs_.faults_detected->Inc();
          }
          if (result.online_status == OnlinePollStatus::kTargetRewound) {
            obs_.targets_rewound->Inc();
          }
          break;
      }
      results_[result.job_id] = std::move(result);
      outstanding_--;
      if (outstanding_ == 0) {
        idle_cv_.notify_all();
      }
    }
    // Another auditee may have become runnable while this one ran.
    work_cv_.notify_one();
  }
}

}  // namespace avm
