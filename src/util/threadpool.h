// Fixed-size worker pool for fanning independent verification work
// (RSA signature checks, hash-chain links, whole segment audits) across
// cores. A pool with thread_count() == 1 owns no worker threads and runs
// everything inline on the calling thread, reproducing the sequential
// code path bit-for-bit; that is the `threads = 1` setting of
// AuditConfig and what callers get when they pass a null pool.
#ifndef SRC_UTIL_THREADPOOL_H_
#define SRC_UTIL_THREADPOOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace avm {

// Resolves a `threads` knob: 0 means "one per hardware thread".
inline unsigned ResolveThreads(unsigned threads) {
  if (threads != 0) {
    return threads;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

class ThreadPool {
 public:
  // `threads` counts the calling thread too: a pool of N spawns N-1
  // workers, because the thread that calls ParallelFor()/Wait()
  // participates in the work.
  explicit ThreadPool(unsigned threads) : threads_(ResolveThreads(threads)) {
    workers_.reserve(threads_ - 1);
    for (unsigned i = 1; i < threads_; i++) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& w : workers_) {
      w.join();
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return threads_; }

  // Enqueues one task. With thread_count() == 1 the task runs before
  // Submit returns (execution order == submission order). Exceptions a
  // task throws are captured; Wait() rethrows the one from the earliest
  // submitted failing task, so the surfaced error does not depend on
  // scheduling.
  void Submit(std::function<void()> fn) {
    uint64_t id;
    {
      std::unique_lock<std::mutex> lock(mu_);
      id = next_task_id_++;
      pending_++;
    }
    if (threads_ <= 1) {
      RunTask(id, fn);
      return;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.emplace_back(id, std::move(fn));
    }
    queue_cv_.notify_one();
  }

  // Blocks until every task submitted so far has finished; the calling
  // thread drains the queue alongside the workers. Rethrows the pending
  // exception with the smallest task id, then clears it.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    while (pending_ > 0) {
      if (!queue_.empty()) {
        auto [id, fn] = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        RunTask(id, fn);
        lock.lock();
        continue;
      }
      done_cv_.wait(lock, [this] { return pending_ == 0 || !queue_.empty(); });
    }
    if (error_) {
      std::exception_ptr e = std::exchange(error_, nullptr);
      error_task_id_ = std::numeric_limits<uint64_t>::max();
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

  // Runs fn(i) for every i in [0, n), blocking until all are done. With
  // thread_count() == 1 this is exactly `for (i = 0; i < n; i++) fn(i);`
  // including exception behavior. Otherwise iterations are claimed
  // dynamically by the workers and the calling thread; if any iterations
  // throw, the exception from the *smallest* index is rethrown after the
  // loop drains, so failures are reported deterministically.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (threads_ <= 1 || n <= 1) {
      for (size_t i = 0; i < n; i++) {
        fn(i);
      }
      return;
    }
    auto state = std::make_shared<ForState>();
    state->n = n;
    state->fn = &fn;
    auto drive = [state] { DriveFor(*state); };
    // One helper per spare worker; the caller drives too. Helpers that
    // arrive after the counter is exhausted simply exit, so completion
    // never depends on a busy worker picking the task up.
    size_t helpers = std::min<size_t>(threads_ - 1, n - 1);
    for (size_t i = 0; i < helpers; i++) {
      Submit(drive);
    }
    DriveFor(*state);
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done == state->n; });
    if (state->error) {
      std::rethrow_exception(state->error);
    }
  }

 private:
  // Shared state of one ParallelFor call. Lives on the heap (shared_ptr)
  // so late-arriving helper tasks can safely find the counter exhausted
  // after the originating call returned.
  struct ForState {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
    size_t error_index = std::numeric_limits<size_t>::max();
    std::exception_ptr error;
  };

  static void DriveFor(ForState& s) {
    for (;;) {
      size_t i = s.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s.n) {
        return;
      }
      std::exception_ptr err;
      try {
        (*s.fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::unique_lock<std::mutex> lock(s.mu);
      if (err && i < s.error_index) {
        s.error_index = i;
        s.error = err;
      }
      if (++s.done == s.n) {
        lock.unlock();
        s.cv.notify_all();
      }
    }
  }

  void RunTask(uint64_t id, const std::function<void()>& fn) {
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (err && id < error_task_id_) {
      error_task_id_ = id;
      error_ = err;
    }
    if (--pending_ == 0) {
      lock.unlock();
      done_cv_.notify_all();
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::pair<uint64_t, std::function<void()>> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;  // stopping_ and nothing left to do.
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      RunTask(task.first, task.second);
      done_cv_.notify_all();
    }
  }

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable done_cv_;
  std::deque<std::pair<uint64_t, std::function<void()>>> queue_;
  size_t pending_ = 0;
  uint64_t next_task_id_ = 0;
  bool stopping_ = false;
  uint64_t error_task_id_ = std::numeric_limits<uint64_t>::max();
  std::exception_ptr error_ = nullptr;
};

}  // namespace avm

#endif  // SRC_UTIL_THREADPOOL_H_
