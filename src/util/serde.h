// Minimal structured serialization used for log entries, packets, snapshots
// and evidence. Values are length-delimited and little-endian so the format
// is unambiguous; Reader throws SerdeError on truncated or malformed input
// (auditors must treat logs from other machines as untrusted data).
#ifndef SRC_UTIL_SERDE_H_
#define SRC_UTIL_SERDE_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/util/bytes.h"

namespace avm {

class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { PutU16(buf_, v); }
  void U32(uint32_t v) { PutU32(buf_, v); }
  void U64(uint64_t v) { PutU64(buf_, v); }
  // Length-prefixed (u32) byte string.
  void Blob(ByteView b) {
    U32(static_cast<uint32_t>(b.size()));
    Append(buf_, b);
  }
  void Str(std::string_view s) { Blob(ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size())); }
  // Raw bytes with no length prefix (caller knows the size).
  void Raw(ByteView b) { Append(buf_, b); }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  uint8_t U8() {
    Need(1);
    return data_[pos_++];
  }
  uint16_t U16() {
    Need(2);
    uint16_t v = GetU16(data_, pos_);
    pos_ += 2;
    return v;
  }
  uint32_t U32() {
    Need(4);
    uint32_t v = GetU32(data_, pos_);
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    Need(8);
    uint64_t v = GetU64(data_, pos_);
    pos_ += 8;
    return v;
  }
  Bytes Blob() {
    uint32_t n = U32();
    Need(n);
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string Str() {
    Bytes b = Blob();
    return ToString(b);
  }
  Bytes Raw(size_t n) {
    Need(n);
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  // Throws unless the whole buffer has been consumed.
  void ExpectEnd() const {
    if (!AtEnd()) {
      throw SerdeError("trailing bytes in serialized value");
    }
  }

 private:
  void Need(size_t n) const {
    if (data_.size() - pos_ < n) {
      throw SerdeError("truncated serialized value");
    }
  }

  ByteView data_;
  size_t pos_ = 0;
};

}  // namespace avm

#endif  // SRC_UTIL_SERDE_H_
