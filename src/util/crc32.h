// CRC-32C (Castagnoli), the polynomial storage systems use for on-disk
// record framing. The log store frames every record with it so torn
// writes and bit rot are detected on recovery. It is NOT tamper
// evidence -- the hash chain (src/tel) provides that; the CRC only
// distinguishes "disk lost bytes" from "machine lied".
//
// Two implementations: the byte-at-a-time table fallback and a
// hardware path (SSE4.2 CRC32 on x86, the ARMv8 CRC32C extension on
// aarch64) selected once at runtime. Both compute the identical
// function; store_test asserts their agreement on random buffers.
#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace avm {

// One-shot CRC of `data`, using the hardware instruction when the CPU
// has one. `seed` chains multi-buffer CRCs: pass the previous call's
// return value to continue.
uint32_t Crc32c(ByteView data, uint32_t seed = 0);

// The table-driven fallback, always available (reference implementation
// for tests and for CPUs without the instruction).
uint32_t Crc32cPortable(ByteView data, uint32_t seed = 0);

// True when Crc32c dispatches to a hardware instruction on this CPU.
bool Crc32cHardwareAvailable();

}  // namespace avm

#endif  // SRC_UTIL_CRC32_H_
