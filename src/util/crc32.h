// CRC-32C (Castagnoli), the polynomial storage systems use for on-disk
// record framing. The log store frames every record with it so torn
// writes and bit rot are detected on recovery. It is NOT tamper
// evidence -- the hash chain (src/tel) provides that; the CRC only
// distinguishes "disk lost bytes" from "machine lied".
#ifndef SRC_UTIL_CRC32_H_
#define SRC_UTIL_CRC32_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace avm {

// One-shot CRC of `data`. `seed` chains multi-buffer CRCs: pass the
// previous call's return value to continue.
uint32_t Crc32c(ByteView data, uint32_t seed = 0);

}  // namespace avm

#endif  // SRC_UTIL_CRC32_H_
