#include "src/util/bytes.h"

#include <stdexcept>

namespace avm {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(ByteView b) {
  return std::string(b.begin(), b.end());
}

std::string HexEncode(ByteView b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t c : b) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

namespace {
int HexVal(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  throw std::invalid_argument("HexDecode: bad hex digit");
}
}  // namespace

Bytes HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("HexDecode: odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>((HexVal(hex[i]) << 4) | HexVal(hex[i + 1])));
  }
  return out;
}

void PutU16(Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(Bytes& out, uint32_t v) {
  for (int i = 0; i < 4; i++) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; i++) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint16_t GetU16(ByteView in, size_t off) {
  return static_cast<uint16_t>(in[off]) | static_cast<uint16_t>(in[off + 1]) << 8;
}

uint32_t GetU32(ByteView in, size_t off) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; i--) {
    v = (v << 8) | in[off + static_cast<size_t>(i)];
  }
  return v;
}

uint64_t GetU64(ByteView in, size_t off) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; i--) {
    v = (v << 8) | in[off + static_cast<size_t>(i)];
  }
  return v;
}

bool BytesEqual(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i] != b[i]) {
      return false;
    }
  }
  return true;
}

void Append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace avm
