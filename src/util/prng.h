// Deterministic PRNG (xoshiro256**). Used for workload generation and
// failure injection so every experiment is reproducible from a seed.
#ifndef SRC_UTIL_PRNG_H_
#define SRC_UTIL_PRNG_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace avm {

class Prng {
 public:
  explicit Prng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Bernoulli trial with probability p (0..1).
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  Bytes RandomBytes(size_t n) {
    Bytes out(n);
    for (size_t i = 0; i < n; i++) {
      out[i] = static_cast<uint8_t>(Next());
    }
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace avm

#endif  // SRC_UTIL_PRNG_H_
