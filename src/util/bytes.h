// Byte-buffer helpers shared by every module.
#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace avm {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

// Converts an arbitrary string to its byte representation.
Bytes ToBytes(std::string_view s);

// Converts a byte buffer to a std::string (bytes copied verbatim).
std::string ToString(ByteView b);

// Lower-case hex encoding ("deadbeef").
std::string HexEncode(ByteView b);

// Decodes a hex string; throws std::invalid_argument on malformed input.
Bytes HexDecode(std::string_view hex);

// Appends `v` to `out` in little-endian byte order.
void PutU16(Bytes& out, uint16_t v);
void PutU32(Bytes& out, uint32_t v);
void PutU64(Bytes& out, uint64_t v);

// Reads little-endian integers from `in` at byte offset `off`.
// The caller must guarantee the buffer is large enough.
uint16_t GetU16(ByteView in, size_t off);
uint32_t GetU32(ByteView in, size_t off);
uint64_t GetU64(ByteView in, size_t off);

// True iff the two buffers have identical length and contents.
bool BytesEqual(ByteView a, ByteView b);

// Appends the contents of `src` to `dst`.
void Append(Bytes& dst, ByteView src);

}  // namespace avm

#endif  // SRC_UTIL_BYTES_H_
