#include "src/util/crc32.h"

#include <array>
#include <cstring>

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#include <arm_acle.h>
#endif

namespace avm {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // CRC-32C, reflected.

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t c = i;
    for (int k = 0; k < 8; k++) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

#if defined(__x86_64__) || defined(__i386__)
#define AVM_CRC32_HW 1

__attribute__((target("sse4.2"))) uint32_t Crc32cHw(ByteView data, uint32_t seed) {
  uint32_t c = ~seed;
  const uint8_t* p = data.data();
  size_t n = data.size();
#if defined(__x86_64__)
  uint64_t c64 = c;
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c64 = __builtin_ia32_crc32di(c64, v);
    p += 8;
    n -= 8;
  }
  c = static_cast<uint32_t>(c64);
#endif
  while (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    c = __builtin_ia32_crc32si(c, v);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    c = __builtin_ia32_crc32qi(c, *p);
    p++;
    n--;
  }
  return ~c;
}

bool DetectHardware() { return __builtin_cpu_supports("sse4.2") != 0; }

#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define AVM_CRC32_HW 1

uint32_t Crc32cHw(ByteView data, uint32_t seed) {
  uint32_t c = ~seed;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    c = __crc32cd(c, v);
    p += 8;
    n -= 8;
  }
  while (n >= 4) {
    uint32_t v;
    std::memcpy(&v, p, 4);
    c = __crc32cw(c, v);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    c = __crc32cb(c, *p);
    p++;
    n--;
  }
  return ~c;
}

// Compiled only when the target baseline guarantees the extension.
bool DetectHardware() { return true; }

#else

bool DetectHardware() { return false; }

#endif

}  // namespace

uint32_t Crc32cPortable(ByteView data, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Table();
  uint32_t c = ~seed;
  for (uint8_t b : data) {
    c = table[(c ^ b) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

bool Crc32cHardwareAvailable() {
  static const bool available = DetectHardware();
  return available;
}

uint32_t Crc32c(ByteView data, uint32_t seed) {
#ifdef AVM_CRC32_HW
  if (Crc32cHardwareAvailable()) {
    return Crc32cHw(data, seed);
  }
#endif
  return Crc32cPortable(data, seed);
}

}  // namespace avm
