#include "src/util/crc32.h"

#include <array>

namespace avm {

namespace {

constexpr uint32_t kPoly = 0x82f63b78u;  // CRC-32C, reflected.

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t c = i;
    for (int k = 0; k < 8; k++) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(ByteView data, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Table();
  uint32_t c = ~seed;
  for (uint8_t b : data) {
    c = table[(c ^ b) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace avm
