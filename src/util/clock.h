// Time sources. Experiments run against a simulated microsecond clock
// (reproducible); benches additionally measure real elapsed time.
#ifndef SRC_UTIL_CLOCK_H_
#define SRC_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace avm {

// Simulated time in microseconds since the start of a scenario.
using SimTime = uint64_t;

constexpr SimTime kMicrosPerMilli = 1000;
constexpr SimTime kMicrosPerSecond = 1000 * 1000;
constexpr SimTime kMicrosPerMinute = 60 * kMicrosPerSecond;

// Wall-clock stopwatch for measuring real processing cost.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     std::chrono::steady_clock::now() - start_)
                                     .count());
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace avm

#endif  // SRC_UTIL_CLOCK_H_
