// Incremental, Merkle-authenticated snapshots of AVM state (§4.4).
//
// The AVMM maintains a hash tree over the AVM's memory pages (plus a leaf
// for the CPU state); after each snapshot it records the top-level value
// in the tamper-evident log. Snapshots are incremental: only pages dirtied
// since the previous snapshot are stored. Auditors reconstruct the state
// at a snapshot by replaying increments, and authenticate it against the
// root hash in the log (spot checking, §3.5/§6.12).
#ifndef SRC_AVMM_SNAPSHOT_H_
#define SRC_AVMM_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/crypto/merkle.h"
#include "src/util/bytes.h"
#include "src/util/clock.h"
#include "src/vm/machine.h"

namespace avm {

// What goes into the kSnapshot log entry.
struct SnapshotMeta {
  uint64_t snapshot_id = 0;  // Dense, starting at 0 (the initial state).
  uint64_t icount = 0;       // Instruction count at the snapshot point.
  SimTime sim_time = 0;
  Hash256 root;              // Merkle root over pages + CPU leaf.
  uint32_t total_pages = 0;
  uint32_t incremental_pages = 0;  // Pages stored in this increment.
  uint64_t stored_bytes = 0;       // Increment size (Figure 9's transfer metric).

  Bytes Serialize() const;
  static SnapshotMeta Deserialize(ByteView data);
};

// One stored increment.
struct SnapshotDelta {
  SnapshotMeta meta;
  Bytes cpu_state;
  std::vector<std::pair<uint32_t, Bytes>> pages;  // (page index, contents).

  Bytes Serialize() const;
  static SnapshotDelta Deserialize(ByteView data);
};

// A fully materialized machine state.
struct MaterializedState {
  CpuState cpu;
  Bytes memory;
  Hash256 root;

  // Wire form (audit checkpoints, src/audit/checkpoint): CPU state plus
  // LZSS-compressed memory, carrying the Merkle root the state must
  // hash to. Deserialize recomputes the root from the decoded state and
  // throws SerdeError when it does not match — the same authenticate-
  // before-trust rule as snapshot verification.
  Bytes Serialize() const;
  static MaterializedState Deserialize(ByteView data);
};

// Computes the Merkle root the AVMM commits to: leaves are the memory
// pages followed by one leaf holding the serialized CPU state.
Hash256 ComputeStateRoot(const Machine& m);
Hash256 ComputeStateRoot(const CpuState& cpu, ByteView memory);

// Holds a machine's snapshot chain; the recording side appends, the
// auditing side reconstructs. (An audit "downloads" a snapshot by reading
// it from the auditee's store and then *verifying* it against the root in
// the verified log, so the store itself need not be trusted.)
class SnapshotStore {
 public:
  void Add(SnapshotDelta delta);

  const SnapshotDelta& Get(uint64_t snapshot_id) const;
  bool Has(uint64_t snapshot_id) const;
  uint64_t Count() const { return deltas_.size(); }

  // Applies increments 0..snapshot_id and returns the full state.
  // mem_size must match the recorded machine.
  MaterializedState Materialize(uint64_t snapshot_id, size_t mem_size) const;

  // Bytes an auditor must transfer to start replay at `snapshot_id`,
  // assuming it already has the base image (delta 0 is the base):
  // increments 1..snapshot_id.
  uint64_t TransferBytesUpTo(uint64_t snapshot_id) const;

 private:
  std::map<uint64_t, SnapshotDelta> deltas_;
};

// Recording-side helper: takes snapshots of a machine, storing increments
// and returning the metadata to log.
class SnapshotManager {
 public:
  explicit SnapshotManager(SnapshotStore* store) : store_(store) {}

  // Takes a snapshot. The first call stores every page (the base); later
  // calls store only pages dirtied since the previous call. Clears the
  // machine's dirty-page tracking.
  SnapshotMeta Take(Machine& m, SimTime sim_time);

  uint64_t next_id() const { return next_id_; }
  // Cumulative wall-clock seconds spent taking snapshots.
  double snapshot_seconds() const { return snapshot_seconds_; }

 private:
  SnapshotStore* store_;
  uint64_t next_id_ = 0;
  double snapshot_seconds_ = 0;
};

}  // namespace avm

#endif  // SRC_AVMM_SNAPSHOT_H_
