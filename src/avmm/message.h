// Wire formats of the accountable transport (§4.3).
//
// Every guest packet is wrapped in a DataFrame carrying the sender's
// payload signature (the "Alice signs her messages" mechanism), the
// sender's SEND-entry authenticator and h_{i-1}, so the receiver can
// verify that e_i really is SEND(m). Receivers reply with an AckFrame
// carrying their RECV-entry authenticator, so the sender can verify that
// the message was logged. Both directions' authenticators are the
// nonrepudiable commitments auditors later collect.
#ifndef SRC_AVMM_MESSAGE_H_
#define SRC_AVMM_MESSAGE_H_

#include <cstdint>

#include "src/crypto/keys.h"
#include "src/crypto/sha256.h"
#include "src/tel/log.h"
#include "src/util/bytes.h"

namespace avm {

// The canonical description of one guest-level message. Serialized
// identically by sender and receiver, so each side can recompute the
// other's log-entry content hash.
struct MessageRecord {
  NodeId src;
  NodeId dst;
  uint64_t msg_id = 0;  // Sender-local, strictly increasing.
  Bytes payload;        // The guest packet, byte-for-byte.

  Bytes Serialize() const;
  static MessageRecord Deserialize(ByteView data);
};

// Content stored in kSend/kRecv log entries: the message record plus the
// sender's payload signature (logged, then stripped before the payload is
// passed into the AVM, exactly as §4.3 describes).
Bytes MessageEntryContent(const MessageRecord& msg, ByteView payload_sig);

enum class FrameType : uint8_t {
  kData = 1,
  kAck = 2,
  kPlainData = 3,  // bare-hw / vm-norec / vm-rec: payload only, no accountability.
  kChallenge = 4,          // §4.6: "respond or be suspected by everyone".
  kChallengeResponse = 5,
};

struct DataFrame {
  MessageRecord msg;
  Bytes payload_sig;   // σ_src(MessageRecord)
  Hash256 prev_hash;   // h_{i-1} on the sender's log
  Authenticator auth;  // commitment to the SEND entry

  Bytes Serialize() const;
  static DataFrame Deserialize(ByteView data);
};

struct AckFrame {
  NodeId acker;
  NodeId orig_src;          // Whose message is being acked.
  uint64_t msg_id = 0;      // Which message.
  Hash256 content_hash;     // H(entry content) of the acked message.
  Hash256 prev_hash;        // h_{i-1} on the acker's log.
  Authenticator auth;       // Commitment to the acker's RECV entry.

  Bytes Serialize() const;
  static AckFrame Deserialize(ByteView data);
};

struct ChallengeFrame {
  NodeId issuer;
  NodeId accused;
  uint64_t challenge_id = 0;
  // What the accused must do; for audits this is "produce the log up to
  // seq", carried as an opaque description here.
  Bytes body;

  Bytes Serialize() const;
  static ChallengeFrame Deserialize(ByteView data);
};

struct ChallengeResponseFrame {
  NodeId responder;
  uint64_t challenge_id = 0;
  Bytes body;

  Bytes Serialize() const;
  static ChallengeResponseFrame Deserialize(ByteView data);
};

// Top-level frame (de)muxing: [u8 type][body...].
Bytes WrapFrame(FrameType type, ByteView body);
FrameType PeekFrameType(ByteView frame);
Bytes UnwrapFrame(ByteView frame);

}  // namespace avm

#endif  // SRC_AVMM_MESSAGE_H_
