// Wire formats of the accountable transport (§4.3).
//
// Every guest packet is wrapped in a DataFrame carrying the sender's
// payload signature (the "Alice signs her messages" mechanism), the
// sender's SEND-entry authenticator and h_{i-1}, so the receiver can
// verify that e_i really is SEND(m). Receivers reply with an AckFrame
// carrying their RECV-entry authenticator, so the sender can verify that
// the message was logged. Both directions' authenticators are the
// nonrepudiable commitments auditors later collect.
#ifndef SRC_AVMM_MESSAGE_H_
#define SRC_AVMM_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "src/crypto/keys.h"
#include "src/crypto/sha256.h"
#include "src/tel/batch.h"
#include "src/tel/log.h"
#include "src/util/bytes.h"

namespace avm {

// The canonical description of one guest-level message. Serialized
// identically by sender and receiver, so each side can recompute the
// other's log-entry content hash.
struct MessageRecord {
  NodeId src;
  NodeId dst;
  uint64_t msg_id = 0;  // Sender-local, strictly increasing.
  Bytes payload;        // The guest packet, byte-for-byte.

  Bytes Serialize() const;
  static MessageRecord Deserialize(ByteView data);
};

// Content stored in kSend/kRecv log entries: the message record plus the
// sender's payload signature (logged, then stripped before the payload is
// passed into the AVM, exactly as §4.3 describes).
Bytes MessageEntryContent(const MessageRecord& msg, ByteView payload_sig);

enum class FrameType : uint8_t {
  kData = 1,
  kAck = 2,
  kPlainData = 3,  // bare-hw / vm-norec / vm-rec: payload only, no accountability.
  kChallenge = 4,          // §4.6: "respond or be suspected by everyone".
  kChallengeResponse = 5,
  // Batched/async sign modes: frames carry the sender's chain links and
  // its latest windowed commitment instead of per-message signatures.
  kBatchData = 6,
  kBatchAck = 7,
  kCommit = 8,  // Standalone commitment delivery (window close / flush).
};

struct DataFrame {
  MessageRecord msg;
  Bytes payload_sig;   // σ_src(MessageRecord)
  Hash256 prev_hash;   // h_{i-1} on the sender's log
  Authenticator auth;  // commitment to the SEND entry

  Bytes Serialize() const;
  static DataFrame Deserialize(ByteView data);
};

struct AckFrame {
  NodeId acker;
  NodeId orig_src;          // Whose message is being acked.
  uint64_t msg_id = 0;      // Which message.
  Hash256 content_hash;     // H(entry content) of the acked message.
  Hash256 prev_hash;        // h_{i-1} on the acker's log.
  Authenticator auth;       // Commitment to the acker's RECV entry.

  Bytes Serialize() const;
  static AckFrame Deserialize(ByteView data);
};

// An incremental view of the sender's hash chain, shipped on every
// batched-mode frame: the links extend the receiver's stored view of
// the sender's chain from from_seq, and `commit` is the sender's latest
// signed windowed commitment (seq == 0 until the first window closes).
// The receiver derives h_i for every announced entry and holds them
// pending until a signed commitment covers them; a sender that later
// commits to a different chain is caught at the junction.
struct ChainTail {
  uint64_t from_seq = 1;
  Hash256 prior_hash;  // h_{from_seq-1}; Zero when from_seq == 1.
  std::vector<ChainLink> links;
  Authenticator commit;

  Bytes Serialize() const;
  static ChainTail Deserialize(ByteView data);
};

// kBatchData: the guest packet plus the sender's chain tail. The tail's
// last link is the SEND(m) entry, so the receiver can recompute h_s
// exactly as HandleData does from a per-message authenticator.
struct BatchDataFrame {
  MessageRecord msg;
  ChainTail tail;

  Bytes Serialize() const;
  static BatchDataFrame Deserialize(ByteView data);
};

// kBatchAck: the usual ack record (its authenticator unsigned — the
// receiver's windowed commitment covers it later) plus the acker's own
// chain tail.
struct BatchAckFrame {
  AckFrame ack;
  ChainTail tail;

  Bytes Serialize() const;
  static BatchAckFrame Deserialize(ByteView data);
};

// kCommit: chain tail delivery with no message attached (window close
// on Flush/Tick when no traffic is flowing).
struct CommitFrame {
  ChainTail tail;

  Bytes Serialize() const;
  static CommitFrame Deserialize(ByteView data);
};

struct ChallengeFrame {
  NodeId issuer;
  NodeId accused;
  uint64_t challenge_id = 0;
  // What the accused must do; for audits this is "produce the log up to
  // seq", carried as an opaque description here.
  Bytes body;

  Bytes Serialize() const;
  static ChallengeFrame Deserialize(ByteView data);
};

struct ChallengeResponseFrame {
  NodeId responder;
  uint64_t challenge_id = 0;
  Bytes body;

  Bytes Serialize() const;
  static ChallengeResponseFrame Deserialize(ByteView data);
};

// Top-level frame (de)muxing: [u8 type][body...].
Bytes WrapFrame(FrameType type, ByteView body);
FrameType PeekFrameType(ByteView frame);
Bytes UnwrapFrame(ByteView frame);

}  // namespace avm

#endif  // SRC_AVMM_MESSAGE_H_
