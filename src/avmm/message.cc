#include "src/avmm/message.h"

#include <algorithm>

#include "src/util/serde.h"

namespace avm {

Bytes MessageRecord::Serialize() const {
  Writer w;
  w.Str(src);
  w.Str(dst);
  w.U64(msg_id);
  w.Blob(payload);
  return w.Take();
}

MessageRecord MessageRecord::Deserialize(ByteView data) {
  Reader r(data);
  MessageRecord m;
  m.src = r.Str();
  m.dst = r.Str();
  m.msg_id = r.U64();
  m.payload = r.Blob();
  r.ExpectEnd();
  return m;
}

Bytes MessageEntryContent(const MessageRecord& msg, ByteView payload_sig) {
  Writer w;
  w.Blob(msg.Serialize());
  w.Blob(payload_sig);
  return w.Take();
}

Bytes DataFrame::Serialize() const {
  Writer w;
  w.Blob(msg.Serialize());
  w.Blob(payload_sig);
  w.Raw(prev_hash.view());
  w.Blob(auth.Serialize());
  return w.Take();
}

DataFrame DataFrame::Deserialize(ByteView data) {
  Reader r(data);
  DataFrame f;
  f.msg = MessageRecord::Deserialize(r.Blob());
  f.payload_sig = r.Blob();
  f.prev_hash = Hash256::FromBytes(r.Raw(32));
  f.auth = Authenticator::Deserialize(r.Blob());
  r.ExpectEnd();
  return f;
}

Bytes AckFrame::Serialize() const {
  Writer w;
  w.Str(acker);
  w.Str(orig_src);
  w.U64(msg_id);
  w.Raw(content_hash.view());
  w.Raw(prev_hash.view());
  w.Blob(auth.Serialize());
  return w.Take();
}

AckFrame AckFrame::Deserialize(ByteView data) {
  Reader r(data);
  AckFrame f;
  f.acker = r.Str();
  f.orig_src = r.Str();
  f.msg_id = r.U64();
  f.content_hash = Hash256::FromBytes(r.Raw(32));
  f.prev_hash = Hash256::FromBytes(r.Raw(32));
  f.auth = Authenticator::Deserialize(r.Blob());
  r.ExpectEnd();
  return f;
}

Bytes ChainTail::Serialize() const {
  Writer w;
  w.U64(from_seq);
  w.Raw(prior_hash.view());
  WriteChainLinks(w, links);
  w.Blob(commit.Serialize());
  return w.Take();
}

ChainTail ChainTail::Deserialize(ByteView data) {
  Reader r(data);
  ChainTail t;
  t.from_seq = r.U64();
  t.prior_hash = Hash256::FromBytes(r.Raw(32));
  t.links = ReadChainLinks(r);
  t.commit = Authenticator::Deserialize(r.Blob());
  r.ExpectEnd();
  return t;
}

Bytes BatchDataFrame::Serialize() const {
  Writer w;
  w.Blob(msg.Serialize());
  w.Blob(tail.Serialize());
  return w.Take();
}

BatchDataFrame BatchDataFrame::Deserialize(ByteView data) {
  Reader r(data);
  BatchDataFrame f;
  f.msg = MessageRecord::Deserialize(r.Blob());
  f.tail = ChainTail::Deserialize(r.Blob());
  r.ExpectEnd();
  return f;
}

Bytes BatchAckFrame::Serialize() const {
  Writer w;
  w.Blob(ack.Serialize());
  w.Blob(tail.Serialize());
  return w.Take();
}

BatchAckFrame BatchAckFrame::Deserialize(ByteView data) {
  Reader r(data);
  BatchAckFrame f;
  f.ack = AckFrame::Deserialize(r.Blob());
  f.tail = ChainTail::Deserialize(r.Blob());
  r.ExpectEnd();
  return f;
}

Bytes CommitFrame::Serialize() const {
  Writer w;
  w.Blob(tail.Serialize());
  return w.Take();
}

CommitFrame CommitFrame::Deserialize(ByteView data) {
  Reader r(data);
  CommitFrame f;
  f.tail = ChainTail::Deserialize(r.Blob());
  r.ExpectEnd();
  return f;
}

Bytes ChallengeFrame::Serialize() const {
  Writer w;
  w.Str(issuer);
  w.Str(accused);
  w.U64(challenge_id);
  w.Blob(body);
  return w.Take();
}

ChallengeFrame ChallengeFrame::Deserialize(ByteView data) {
  Reader r(data);
  ChallengeFrame f;
  f.issuer = r.Str();
  f.accused = r.Str();
  f.challenge_id = r.U64();
  f.body = r.Blob();
  r.ExpectEnd();
  return f;
}

Bytes ChallengeResponseFrame::Serialize() const {
  Writer w;
  w.Str(responder);
  w.U64(challenge_id);
  w.Blob(body);
  return w.Take();
}

ChallengeResponseFrame ChallengeResponseFrame::Deserialize(ByteView data) {
  Reader r(data);
  ChallengeResponseFrame f;
  f.responder = r.Str();
  f.challenge_id = r.U64();
  f.body = r.Blob();
  r.ExpectEnd();
  return f;
}

Bytes WrapFrame(FrameType type, ByteView body) {
  Bytes out;
  out.reserve(body.size() + 1);
  out.push_back(static_cast<uint8_t>(type));
  Append(out, body);
  return out;
}

FrameType PeekFrameType(ByteView frame) {
  if (frame.empty() || frame[0] < 1 || frame[0] > 8) {
    throw SerdeError("bad frame type");
  }
  return static_cast<FrameType>(frame[0]);
}

Bytes UnwrapFrame(ByteView frame) {
  if (frame.empty()) {
    throw SerdeError("empty frame");
  }
  return Bytes(frame.begin() + 1, frame.end());
}

}  // namespace avm
