#include "src/avmm/message.h"

#include "src/util/serde.h"

namespace avm {

Bytes MessageRecord::Serialize() const {
  Writer w;
  w.Str(src);
  w.Str(dst);
  w.U64(msg_id);
  w.Blob(payload);
  return w.Take();
}

MessageRecord MessageRecord::Deserialize(ByteView data) {
  Reader r(data);
  MessageRecord m;
  m.src = r.Str();
  m.dst = r.Str();
  m.msg_id = r.U64();
  m.payload = r.Blob();
  r.ExpectEnd();
  return m;
}

Bytes MessageEntryContent(const MessageRecord& msg, ByteView payload_sig) {
  Writer w;
  w.Blob(msg.Serialize());
  w.Blob(payload_sig);
  return w.Take();
}

Bytes DataFrame::Serialize() const {
  Writer w;
  w.Blob(msg.Serialize());
  w.Blob(payload_sig);
  w.Raw(prev_hash.view());
  w.Blob(auth.Serialize());
  return w.Take();
}

DataFrame DataFrame::Deserialize(ByteView data) {
  Reader r(data);
  DataFrame f;
  f.msg = MessageRecord::Deserialize(r.Blob());
  f.payload_sig = r.Blob();
  f.prev_hash = Hash256::FromBytes(r.Raw(32));
  f.auth = Authenticator::Deserialize(r.Blob());
  r.ExpectEnd();
  return f;
}

Bytes AckFrame::Serialize() const {
  Writer w;
  w.Str(acker);
  w.Str(orig_src);
  w.U64(msg_id);
  w.Raw(content_hash.view());
  w.Raw(prev_hash.view());
  w.Blob(auth.Serialize());
  return w.Take();
}

AckFrame AckFrame::Deserialize(ByteView data) {
  Reader r(data);
  AckFrame f;
  f.acker = r.Str();
  f.orig_src = r.Str();
  f.msg_id = r.U64();
  f.content_hash = Hash256::FromBytes(r.Raw(32));
  f.prev_hash = Hash256::FromBytes(r.Raw(32));
  f.auth = Authenticator::Deserialize(r.Blob());
  r.ExpectEnd();
  return f;
}

Bytes ChallengeFrame::Serialize() const {
  Writer w;
  w.Str(issuer);
  w.Str(accused);
  w.U64(challenge_id);
  w.Blob(body);
  return w.Take();
}

ChallengeFrame ChallengeFrame::Deserialize(ByteView data) {
  Reader r(data);
  ChallengeFrame f;
  f.issuer = r.Str();
  f.accused = r.Str();
  f.challenge_id = r.U64();
  f.body = r.Blob();
  r.ExpectEnd();
  return f;
}

Bytes ChallengeResponseFrame::Serialize() const {
  Writer w;
  w.Str(responder);
  w.U64(challenge_id);
  w.Blob(body);
  return w.Take();
}

ChallengeResponseFrame ChallengeResponseFrame::Deserialize(ByteView data) {
  Reader r(data);
  ChallengeResponseFrame f;
  f.responder = r.Str();
  f.challenge_id = r.U64();
  f.body = r.Blob();
  r.ExpectEnd();
  return f;
}

Bytes WrapFrame(FrameType type, ByteView body) {
  Bytes out;
  out.reserve(body.size() + 1);
  out.push_back(static_cast<uint8_t>(type));
  Append(out, body);
  return out;
}

FrameType PeekFrameType(ByteView frame) {
  if (frame.empty() || frame[0] < 1 || frame[0] > 5) {
    throw SerdeError("bad frame type");
  }
  return static_cast<FrameType>(frame[0]);
}

Bytes UnwrapFrame(ByteView frame) {
  if (frame.empty()) {
    throw SerdeError("empty frame");
  }
  return Bytes(frame.begin() + 1, frame.end());
}

}  // namespace avm
