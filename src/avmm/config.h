// Run configurations. These reproduce the paper's five-point evaluation
// axis (§6.2): bare-hw, vmware-norec, vmware-rec, avmm-nosig, avmm-rsa768
// (plus rsa2048 for the key-strength sweep).
#ifndef SRC_AVMM_CONFIG_H_
#define SRC_AVMM_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/crypto/keys.h"
#include "src/util/clock.h"

namespace avm {

// How authenticator signatures are produced on the record/send hot path
// (§6.8: the RSA signature is the single largest step in the latency
// stack, so making it rare or asynchronous is the lever).
enum class SignMode : uint8_t {
  kSync,     // One signature per message, inline: the paper's protocol.
  kBatched,  // One signature per k-entry window, signed inline when the
             // window closes; frames carry the chain links instead.
  kAsync,    // Like kBatched, but the RSA work runs on a dedicated
             // signer thread with a bounded queue; Flush() is the barrier.
};

const char* SignModeName(SignMode m);

struct RunConfig {
  enum class Mode {
    kBareHw,   // Guest runs on the raw interpreter; plain network frames.
    kVmNoRec,  // Full device-emulation path, no recording.
    kVmRec,    // + execution-trace recording into a plain (non-TE) log.
    kAvmm,     // + tamper-evident log, acks, authenticators, signatures.
  };

  Mode mode = Mode::kAvmm;
  SignatureScheme scheme = SignatureScheme::kRsa768;

  // Signature pipeline. kSync reproduces the paper's per-message
  // protocol bit-for-bit and is the default everywhere.
  SignMode sign_mode = SignMode::kSync;
  // Batch window: one signature commits up to this many log entries
  // (batched/async modes). Crashing mid-window can leave at most this
  // many entries uncommitted -- the same exposure as the paper's
  // unacknowledged suffix.
  uint32_t sign_batch_entries = 8;

  // Durable commit: an authenticator (or batch-window commitment) is
  // released to the network only once every entry it covers is behind
  // the log sink's durability watermark (TamperEvidentLog::DurableSeq,
  // i.e. store::LogStore's group-commit fsync boundary). Off by
  // default: without it the paper's protocol releases authenticators
  // that a crash could orphan, leaving the node unable to re-derive
  // what it already committed to. With no sink attached the watermark
  // equals LastSeq() and the gate is a no-op.
  bool durable_commit = false;

  // §6.5's clock-read optimization: consecutive clock reads within 5 µs
  // are delayed exponentially (50 µs * 2^(n-2), capped at 5 ms).
  bool clock_read_optimization = true;
  // The paper's window is 5 µs on a ~3 GHz CPU; AVM-32 retires ~300x
  // fewer instructions per µs, so the window scales to keep "consecutive"
  // meaning "a busy-wait loop, not application-paced reads".
  SimTime clock_opt_window = 50;        // µs between reads that counts as "consecutive"
  SimTime clock_opt_base_delay = 50;    // µs
  SimTime clock_opt_max_delay = 5000;   // µs

  // Virtual CPU speed: guest instructions retired per simulated µs.
  uint32_t ips_per_us = 10;

  // Periodic snapshots (0 = only the implicit initial/final snapshots).
  SimTime snapshot_interval = 0;

  // Deliver packets with an RX interrupt (true) or rely on guest polling
  // of NET_RXLEN (false). The game polls; the key-value server uses IRQs.
  bool rx_irq = false;

  size_t mem_size = 256 * 1024;

  // Transport knobs.
  SimTime retransmit_timeout = 50 * kMicrosPerMilli;
  int max_retransmits = 10;

  bool RecordsTrace() const { return mode == Mode::kVmRec || mode == Mode::kAvmm; }
  bool TamperEvident() const { return mode == Mode::kAvmm; }
  // Batched or async signing: frames carry chain links + windowed
  // commitments instead of per-message authenticator signatures.
  bool BatchedSigning() const { return TamperEvident() && sign_mode != SignMode::kSync; }
  const char* Name() const;

  static RunConfig BareHw();
  static RunConfig VmNoRec();
  static RunConfig VmRec();
  static RunConfig AvmmNoSig();
  static RunConfig AvmmRsa768();
  static RunConfig AvmmRsa2048();
  static RunConfig AvmmRsa768Batched(uint32_t batch_entries = 8);
  static RunConfig AvmmRsa768Async(uint32_t batch_entries = 8);
};

}  // namespace avm

#endif  // SRC_AVMM_CONFIG_H_
