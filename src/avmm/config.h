// Run configurations. These reproduce the paper's five-point evaluation
// axis (§6.2): bare-hw, vmware-norec, vmware-rec, avmm-nosig, avmm-rsa768
// (plus rsa2048 for the key-strength sweep).
#ifndef SRC_AVMM_CONFIG_H_
#define SRC_AVMM_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/crypto/keys.h"
#include "src/util/clock.h"

namespace avm {

struct RunConfig {
  enum class Mode {
    kBareHw,   // Guest runs on the raw interpreter; plain network frames.
    kVmNoRec,  // Full device-emulation path, no recording.
    kVmRec,    // + execution-trace recording into a plain (non-TE) log.
    kAvmm,     // + tamper-evident log, acks, authenticators, signatures.
  };

  Mode mode = Mode::kAvmm;
  SignatureScheme scheme = SignatureScheme::kRsa768;

  // §6.5's clock-read optimization: consecutive clock reads within 5 µs
  // are delayed exponentially (50 µs * 2^(n-2), capped at 5 ms).
  bool clock_read_optimization = true;
  // The paper's window is 5 µs on a ~3 GHz CPU; AVM-32 retires ~300x
  // fewer instructions per µs, so the window scales to keep "consecutive"
  // meaning "a busy-wait loop, not application-paced reads".
  SimTime clock_opt_window = 50;        // µs between reads that counts as "consecutive"
  SimTime clock_opt_base_delay = 50;    // µs
  SimTime clock_opt_max_delay = 5000;   // µs

  // Virtual CPU speed: guest instructions retired per simulated µs.
  uint32_t ips_per_us = 10;

  // Periodic snapshots (0 = only the implicit initial/final snapshots).
  SimTime snapshot_interval = 0;

  // Deliver packets with an RX interrupt (true) or rely on guest polling
  // of NET_RXLEN (false). The game polls; the key-value server uses IRQs.
  bool rx_irq = false;

  size_t mem_size = 256 * 1024;

  // Transport knobs.
  SimTime retransmit_timeout = 50 * kMicrosPerMilli;
  int max_retransmits = 10;

  bool RecordsTrace() const { return mode == Mode::kVmRec || mode == Mode::kAvmm; }
  bool TamperEvident() const { return mode == Mode::kAvmm; }
  const char* Name() const;

  static RunConfig BareHw();
  static RunConfig VmNoRec();
  static RunConfig VmRec();
  static RunConfig AvmmNoSig();
  static RunConfig AvmmRsa768();
  static RunConfig AvmmRsa2048();
};

}  // namespace avm

#endif  // SRC_AVMM_CONFIG_H_
