#include "src/avmm/config.h"

namespace avm {

const char* SignModeName(SignMode m) {
  switch (m) {
    case SignMode::kSync:
      return "sync";
    case SignMode::kBatched:
      return "batched";
    case SignMode::kAsync:
      return "async";
  }
  return "?";
}

const char* RunConfig::Name() const {
  switch (mode) {
    case Mode::kBareHw:
      return "bare-hw";
    case Mode::kVmNoRec:
      return "vm-norec";
    case Mode::kVmRec:
      return "vm-rec";
    case Mode::kAvmm:
      switch (scheme) {
        case SignatureScheme::kNone:
          switch (sign_mode) {
            case SignMode::kSync:
              return "avmm-nosig";
            case SignMode::kBatched:
              return "avmm-nosig-batched";
            case SignMode::kAsync:
              return "avmm-nosig-async";
          }
          return "avmm-nosig";
        case SignatureScheme::kRsa768:
          switch (sign_mode) {
            case SignMode::kSync:
              return "avmm-rsa768";
            case SignMode::kBatched:
              return "avmm-rsa768-batched";
            case SignMode::kAsync:
              return "avmm-rsa768-async";
          }
          return "avmm-rsa768";
        case SignatureScheme::kRsa2048:
          switch (sign_mode) {
            case SignMode::kSync:
              return "avmm-rsa2048";
            case SignMode::kBatched:
              return "avmm-rsa2048-batched";
            case SignMode::kAsync:
              return "avmm-rsa2048-async";
          }
          return "avmm-rsa2048";
      }
  }
  return "?";
}

RunConfig RunConfig::BareHw() {
  RunConfig c;
  c.mode = Mode::kBareHw;
  c.scheme = SignatureScheme::kNone;
  return c;
}

RunConfig RunConfig::VmNoRec() {
  RunConfig c;
  c.mode = Mode::kVmNoRec;
  c.scheme = SignatureScheme::kNone;
  return c;
}

RunConfig RunConfig::VmRec() {
  RunConfig c;
  c.mode = Mode::kVmRec;
  c.scheme = SignatureScheme::kNone;
  return c;
}

RunConfig RunConfig::AvmmNoSig() {
  RunConfig c;
  c.mode = Mode::kAvmm;
  c.scheme = SignatureScheme::kNone;
  return c;
}

RunConfig RunConfig::AvmmRsa768() {
  RunConfig c;
  c.mode = Mode::kAvmm;
  c.scheme = SignatureScheme::kRsa768;
  return c;
}

RunConfig RunConfig::AvmmRsa2048() {
  RunConfig c;
  c.mode = Mode::kAvmm;
  c.scheme = SignatureScheme::kRsa2048;
  return c;
}

RunConfig RunConfig::AvmmRsa768Batched(uint32_t batch_entries) {
  RunConfig c = AvmmRsa768();
  c.sign_mode = SignMode::kBatched;
  c.sign_batch_entries = batch_entries;
  return c;
}

RunConfig RunConfig::AvmmRsa768Async(uint32_t batch_entries) {
  RunConfig c = AvmmRsa768();
  c.sign_mode = SignMode::kAsync;
  c.sign_batch_entries = batch_entries;
  return c;
}

}  // namespace avm
