#include "src/avmm/config.h"

namespace avm {

const char* RunConfig::Name() const {
  switch (mode) {
    case Mode::kBareHw:
      return "bare-hw";
    case Mode::kVmNoRec:
      return "vm-norec";
    case Mode::kVmRec:
      return "vm-rec";
    case Mode::kAvmm:
      switch (scheme) {
        case SignatureScheme::kNone:
          return "avmm-nosig";
        case SignatureScheme::kRsa768:
          return "avmm-rsa768";
        case SignatureScheme::kRsa2048:
          return "avmm-rsa2048";
      }
  }
  return "?";
}

RunConfig RunConfig::BareHw() {
  RunConfig c;
  c.mode = Mode::kBareHw;
  c.scheme = SignatureScheme::kNone;
  return c;
}

RunConfig RunConfig::VmNoRec() {
  RunConfig c;
  c.mode = Mode::kVmNoRec;
  c.scheme = SignatureScheme::kNone;
  return c;
}

RunConfig RunConfig::VmRec() {
  RunConfig c;
  c.mode = Mode::kVmRec;
  c.scheme = SignatureScheme::kNone;
  return c;
}

RunConfig RunConfig::AvmmNoSig() {
  RunConfig c;
  c.mode = Mode::kAvmm;
  c.scheme = SignatureScheme::kNone;
  return c;
}

RunConfig RunConfig::AvmmRsa768() {
  RunConfig c;
  c.mode = Mode::kAvmm;
  c.scheme = SignatureScheme::kRsa768;
  return c;
}

RunConfig RunConfig::AvmmRsa2048() {
  RunConfig c;
  c.mode = Mode::kAvmm;
  c.scheme = SignatureScheme::kRsa2048;
  return c;
}

}  // namespace avm
