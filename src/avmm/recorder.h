// The accountable virtual machine monitor (§4).
//
// Avmm hosts one guest image in an AVM-32 machine and, depending on the
// RunConfig, (a) just executes it (bare-hw / vm-norec), (b) additionally
// records every nondeterministic event for deterministic replay (vm-rec),
// or (c) additionally maintains the tamper-evident log, signs and acks
// every message, and takes Merkle-authenticated snapshots (avmm-*).
//
// The simulation driver advances the AVMM in quanta: network frames are
// delivered between quanta, and the guest executes cfg.ips_per_us
// instructions per simulated microsecond.
#ifndef SRC_AVMM_RECORDER_H_
#define SRC_AVMM_RECORDER_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/avmm/config.h"
#include "src/avmm/snapshot.h"
#include "src/avmm/transport.h"
#include "src/net/network.h"
#include "src/tel/log.h"
#include "src/tel/verifier.h"
#include "src/util/prng.h"
#include "src/vm/machine.h"
#include "src/vm/trace.h"

namespace avm {

class Avmm : public DeviceBackend {
 public:
  // Host-side manipulation hook, invoked before every quantum. This is how
  // the experiments model cheats that operate outside the guest: memory
  // pokes (unlimited ammo, teleport) or any other tampering with the AVM.
  using CheatHook = std::function<void(Machine& m, SimTime now)>;

  struct Stats {
    uint64_t frames_rendered = 0;
    uint64_t guest_packets_sent = 0;
    uint64_t guest_packets_delivered = 0;
    uint64_t clock_reads = 0;
    uint64_t clock_reads_delayed = 0;  // §6.5 optimization hits.
    uint64_t trace_events = 0;
  };

  Avmm(NodeId id, RunConfig cfg, ByteView image, const Signer* signer, SimNetwork* net,
       const KeyRegistry* registry, uint64_t rng_seed = 42);
  ~Avmm() override;

  // Peers in global order; the order defines the guest-visible host
  // indices (all participants must use the same order). Includes self.
  void AddPeer(const NodeId& peer);
  uint32_t SelfIndex() const;

  // Queues a local input event (keystroke/mouse). Nondeterministic input;
  // recorded when the guest polls it. The optional attestation (§7.2:
  // input devices that sign their events) is logged alongside the value
  // so auditors can verify the event came from the real device.
  void PushInput(uint32_t code, Bytes attestation = {});

  void SetCheatHook(CheatHook hook) { cheat_hook_ = std::move(hook); }

  // Spills the tamper-evident log to a durable sink (e.g. a
  // store::LogStore): entries already logged (snapshot 0 etc.) are
  // backfilled, every later append is teed through, and Finish()
  // flushes. The in-memory log stays authoritative, so verdicts and
  // measurements are unchanged; the sink is what survives the process.
  void SpillTo(LogSink* sink) { log_.SetSink(sink, /*backfill=*/true); }

  // Runs the guest for `quantum_us` simulated microseconds starting at
  // `now`, after delivering any queued incoming packets.
  RunExit RunQuantum(SimTime now, SimTime quantum_us);

  // Takes a snapshot immediately (also called periodically per config).
  SnapshotMeta TakeSnapshot(SimTime now);

  // Signs a commitment to the current end of the log. Auditors request
  // this before an audit so the whole log (including trailing trace
  // entries not yet covered by a message authenticator) is committed.
  Authenticator CommitLog() const;
  // Signs a commitment to a specific log prefix (auditors request the
  // pair of authenticators bounding the segment they want, §4.3).
  Authenticator CommitLogAt(uint64_t seq) const;

  // Final snapshot + END marker; call once when the scenario stops.
  void Finish(SimTime now);

  // Post-settle shutdown barrier. Frames delivered after Finish() (the
  // scenario's network settle) append RECV/ACK/PeerCommitRecord entries
  // and can enqueue fresh async sign work past Finish()'s barrier;
  // without this, a caller could Seal() the store while the signer
  // thread still holds queued entries and the sink holds unflushed
  // appends. Drains the signer, releases anything durably gated, and
  // flushes the sink past every entry. Idempotent; safe after Finish().
  void DrainPending(SimTime now);

  // DeviceBackend (the guest's view of its "hardware").
  uint32_t PortIn(Machine& m, uint16_t port) override;
  void PortOut(Machine& m, uint16_t port, uint32_t value) override;

  // Accessors.
  const NodeId& id() const { return id_; }
  const RunConfig& config() const { return cfg_; }
  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  TamperEvidentLog& log() { return log_; }
  const TamperEvidentLog& log() const { return log_; }
  Transport& transport() { return *transport_; }
  SnapshotStore& snapshot_store() { return snapshot_store_; }
  const SnapshotStore& snapshot_store() const { return snapshot_store_; }
  AuthenticatorStore& auth_store() { return auth_store_; }
  const AuthenticatorStore& auth_store() const { return auth_store_; }
  const Stats& stats() const { return stats_; }
  const Bytes& console_output() const { return console_output_; }
  const std::vector<uint32_t>& debug_values() const { return debug_values_; }

  // What an unmodified (non-tamper-evident) VMM would have logged for the
  // same execution: trace events with plain headers, packet payloads in
  // MAC entries (Figure 3's "equivalent VMware log" line).
  uint64_t vmware_equiv_bytes() const { return vmware_equiv_bytes_; }

  // Cost accounting (Figure 6's split).
  double exec_seconds() const { return exec_seconds_; }
  double record_seconds() const { return record_seconds_; }
  double crypto_seconds() const { return transport_->crypto_seconds(); }
  double snapshot_seconds() const { return snapshot_mgr_.snapshot_seconds(); }

 private:
  void RecordEvent(TraceEvent e);
  void DeliverPendingRx(Machine& m);
  uint64_t VirtualClockMicros(const Machine& m) const;
  uint32_t ReadClockLo(Machine& m);

  NodeId id_;
  RunConfig cfg_;
  const Signer* signer_;
  Machine machine_;
  TamperEvidentLog log_;
  AuthenticatorStore auth_store_;
  std::unique_ptr<Transport> transport_;
  SnapshotStore snapshot_store_;
  SnapshotManager snapshot_mgr_;
  Prng rng_;

  std::vector<NodeId> peers_;
  std::deque<std::pair<uint32_t, Bytes>> input_queue_;  // (code, attestation)
  std::deque<Bytes> rx_queue_;
  std::optional<size_t> rx_mailbox_len_;

  CheatHook cheat_hook_;

  // Virtual clock state.
  SimTime stall_total_us_ = 0;    // Accumulated §6.5 stalls (in the clock).
  SimTime pending_stall_us_ = 0;  // Stall to burn right after this read.
  uint64_t last_clock_raw_us_ = 0;  // Stall-free time of the last read.
  uint64_t last_clock_returned_us_ = 0;
  uint32_t consecutive_clock_reads_ = 0;
  uint64_t clock_latch_ = 0;  // CLOCK_HI returns the latched upper half.

  SimTime current_now_ = 0;
  SimTime last_snapshot_time_ = 0;
  bool finished_ = false;

  Stats stats_;
  Bytes console_output_;
  std::vector<uint32_t> debug_values_;
  uint64_t vmware_equiv_bytes_ = 0;
  double exec_seconds_ = 0;
  double record_seconds_ = 0;

  // Publishes stats_ and the Figure-6 cost split into the obs registry
  // as callback gauges; stats_ stays the compatibility view. Last so
  // the callbacks unregister first on destruction.
  void RegisterObsMetrics();
  std::vector<obs::Registry::CallbackHandle> obs_handles_;
};

}  // namespace avm

#endif  // SRC_AVMM_RECORDER_H_
