// Background signing pipeline for SignMode::kAsync: the record/send hot
// path enqueues (seq, chain hash) pairs and returns after the cheap
// SHA-256 chain append; a dedicated signer thread (a 2-thread
// src/util/threadpool.h pool: one worker plus the caller on barriers)
// produces the RSA authenticator signatures in the background.
//
// The queue is bounded: once max_inflight requests are outstanding,
// Enqueue blocks (draining the queue alongside the worker) so a burst
// cannot grow the unsigned tail without limit. Barrier() is the
// Flush()/Finish() synchronization point: after it returns, every
// enqueued commitment is available from Drain().
//
// Thread-safety: Sign runs on the worker while the owning thread keeps
// appending/verifying; this is safe because the signer's key material
// (including the cached Montgomery contexts) is immutable after
// construction.
#ifndef SRC_AVMM_ASYNC_SIGNER_H_
#define SRC_AVMM_ASYNC_SIGNER_H_

#include <mutex>
#include <utility>
#include <vector>

#include "src/crypto/keys.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tel/log.h"
#include "src/util/threadpool.h"

namespace avm {

class AsyncSignPipeline {
 public:
  AsyncSignPipeline(NodeId node, const Signer* signer, size_t max_inflight = 64)
      : node_(std::move(node)), signer_(signer), max_inflight_(max_inflight), pool_(2) {
    auto& reg = obs::Registry::Global();
    const obs::Labels labels{{"node", std::string(node_)}};
    queue_depth_ = reg.GetGauge("signer_queue_depth", labels);
    sign_us_ = reg.GetHistogram("signer_sign_us", labels);
    signed_counter_ = reg.GetCounter("signer_signed_total", labels);
  }

  ~AsyncSignPipeline() { pool_.Wait(); }

  AsyncSignPipeline(const AsyncSignPipeline&) = delete;
  AsyncSignPipeline& operator=(const AsyncSignPipeline&) = delete;

  // Queues the signature over the authenticator payload for (seq, hash).
  // Blocks only when the bounded queue is full.
  void Enqueue(uint64_t seq, const Hash256& hash) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (inflight_ >= max_inflight_) {
        lock.unlock();
        pool_.Wait();  // Backpressure: help drain, then continue.
        lock.lock();
      }
      inflight_++;
      queue_depth_->Set(static_cast<int64_t>(inflight_));
    }
    pool_.Submit([this, seq, hash] {
      Authenticator a;
      a.node = node_;
      a.seq = seq;
      a.hash = hash;
      {
        obs::Span span(obs::kPhaseSignerSign, "signer");
        const uint64_t t0 = obs::Enabled() ? obs::NowMicros() : 0;
        a.signature = signer_->SignDigest(Authenticator::SignedPayloadDigest(node_, seq, hash));
        if (t0 != 0) {
          sign_us_->Record(obs::NowMicros() - t0);
        }
      }
      signed_counter_->Inc();
      std::lock_guard<std::mutex> g(mu_);
      done_.push_back(std::move(a));
      inflight_--;
      queue_depth_->Set(static_cast<int64_t>(inflight_));
      signed_total_++;
    });
  }

  // Completed commitments, in completion order. Non-blocking.
  std::vector<Authenticator> Drain() {
    std::lock_guard<std::mutex> g(mu_);
    return std::exchange(done_, {});
  }

  // Blocks until every enqueued signature has been produced.
  void Barrier() { pool_.Wait(); }

  uint64_t signed_total() const {
    std::lock_guard<std::mutex> g(mu_);
    return signed_total_;
  }

 private:
  NodeId node_;
  const Signer* signer_;
  size_t max_inflight_;
  mutable std::mutex mu_;
  std::vector<Authenticator> done_;
  size_t inflight_ = 0;
  uint64_t signed_total_ = 0;
  // Registry-owned telemetry (stable pointers; signer metrics survive
  // the pipeline because async signers are per-run, metrics per-node).
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* sign_us_ = nullptr;
  obs::Counter* signed_counter_ = nullptr;
  ThreadPool pool_;
};

}  // namespace avm

#endif  // SRC_AVMM_ASYNC_SIGNER_H_
