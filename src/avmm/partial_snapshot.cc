#include "src/avmm/partial_snapshot.h"

#include <stdexcept>

#include "src/util/serde.h"

namespace avm {

Bytes PartialSnapshot::Serialize() const {
  Writer w;
  w.Raw(root.view());
  w.U32(total_pages);
  w.Blob(cpu_state);
  w.Blob(cpu_proof.Serialize());
  w.U32(static_cast<uint32_t>(pages.size()));
  for (const Page& p : pages) {
    w.U32(p.index);
    w.Blob(p.data);
    w.Blob(p.proof.Serialize());
  }
  return w.Take();
}

PartialSnapshot PartialSnapshot::Deserialize(ByteView data) {
  Reader r(data);
  PartialSnapshot s;
  s.root = Hash256::FromBytes(r.Raw(32));
  s.total_pages = r.U32();
  s.cpu_state = r.Blob();
  s.cpu_proof = MerkleProof::Deserialize(r.Blob());
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    Page p;
    p.index = r.U32();
    p.data = r.Blob();
    p.proof = MerkleProof::Deserialize(r.Blob());
    s.pages.push_back(std::move(p));
  }
  r.ExpectEnd();
  return s;
}

size_t PartialSnapshot::TransferSize() const {
  return Serialize().size();
}

PartialSnapshot MakePartialSnapshot(const MaterializedState& state,
                                    const std::vector<uint32_t>& pages) {
  if (state.memory.size() % kPageSize != 0) {
    throw std::invalid_argument("MakePartialSnapshot: memory not page aligned");
  }
  size_t page_count = state.memory.size() / kPageSize;

  // Rebuild the same tree the AVMM committed to: page leaves + CPU leaf.
  std::vector<Hash256> leaves;
  leaves.reserve(page_count + 1);
  for (size_t i = 0; i < page_count; i++) {
    leaves.push_back(MerkleLeafHash(ByteView(state.memory).subspan(i * kPageSize, kPageSize)));
  }
  Bytes cpu_bytes = state.cpu.Serialize();
  leaves.push_back(MerkleLeafHash(cpu_bytes));
  MerkleTree tree(std::move(leaves));

  PartialSnapshot out;
  out.root = tree.Root();
  out.total_pages = static_cast<uint32_t>(page_count);
  out.cpu_state = cpu_bytes;
  out.cpu_proof = tree.ProveLeaf(page_count);
  for (uint32_t idx : pages) {
    if (idx >= page_count) {
      throw std::out_of_range("MakePartialSnapshot: page index out of range");
    }
    PartialSnapshot::Page p;
    p.index = idx;
    ByteView page = ByteView(state.memory).subspan(idx * kPageSize, kPageSize);
    p.data.assign(page.begin(), page.end());
    p.proof = tree.ProveLeaf(idx);
    out.pages.push_back(std::move(p));
  }
  return out;
}

bool VerifyPartialSnapshot(const PartialSnapshot& snapshot, const Hash256& expected_root) {
  if (snapshot.root != expected_root) {
    return false;
  }
  if (!MerkleTree::VerifyProof(expected_root, MerkleLeafHash(snapshot.cpu_state),
                               snapshot.cpu_proof)) {
    return false;
  }
  if (snapshot.cpu_proof.leaf_index != snapshot.total_pages) {
    return false;  // CPU leaf must be the one after the last page.
  }
  for (const PartialSnapshot::Page& p : snapshot.pages) {
    if (p.index >= snapshot.total_pages || p.data.size() != kPageSize) {
      return false;
    }
    if (p.proof.leaf_index != p.index) {
      return false;
    }
    if (!MerkleTree::VerifyProof(expected_root, MerkleLeafHash(p.data), p.proof)) {
      return false;
    }
  }
  return true;
}

std::optional<PartialState> MaterializePartial(const PartialSnapshot& snapshot,
                                               const Hash256& expected_root) {
  if (!VerifyPartialSnapshot(snapshot, expected_root)) {
    return std::nullopt;
  }
  PartialState st;
  st.cpu = CpuState::Deserialize(snapshot.cpu_state);
  st.memory.assign(static_cast<size_t>(snapshot.total_pages) * kPageSize, 0);
  st.present_pages.assign(snapshot.total_pages, false);
  for (const PartialSnapshot::Page& p : snapshot.pages) {
    std::copy(p.data.begin(), p.data.end(),
              st.memory.begin() + static_cast<ptrdiff_t>(p.index * kPageSize));
    st.present_pages[p.index] = true;
  }
  return st;
}

}  // namespace avm
