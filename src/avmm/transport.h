// The accountable transport: commitment protocol of §4.3 plus the
// multi-party challenge mechanism of §4.6.
//
// Outgoing guest packets are logged as SEND entries and wrapped in
// DataFrames carrying an authenticator; incoming frames are verified,
// logged as RECV entries, acknowledged with the receiver's own
// authenticator, and retransmitted by the sender until acknowledged.
// In the non-accountable configurations (bare-hw / vm-norec / vm-rec) the
// same class ships plain frames with no logging, signatures or acks.
//
// Sign modes (RunConfig::sign_mode): kSync is the per-message protocol
// above, bit-for-bit. kBatched/kAsync amortize the RSA cost: frames
// carry the sender's chain links plus its most recent *windowed*
// commitment (one signature per k log entries, produced inline or on a
// background signer thread); receivers track each peer's chain
// incrementally, hold the derived per-entry hashes pending, and verify
// one signature per window. Once a window commitment verifies, the
// receiver logs a PeerCommitRecord so audits can re-establish that
// every signature-less RECV/ACK entry was covered. The cost of the
// deferral is bounded detection lag, not lost evidence: misbehavior
// inside an open window is exposed at the next commitment (or by the
// retransmit/suspect machinery if the peer never closes one), and a
// crash loses at most the unsigned tail of one window -- the same
// exposure as the paper's unacknowledged suffix. All nodes of a
// scenario must run the same sign mode.
#ifndef SRC_AVMM_TRANSPORT_H_
#define SRC_AVMM_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/avmm/async_signer.h"
#include "src/avmm/config.h"
#include "src/avmm/message.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/tel/batch.h"
#include "src/tel/log.h"
#include "src/tel/verifier.h"

namespace avm {

class Transport : public NetworkDelegate {
 public:
  // Called with each verified incoming guest payload.
  using PacketHandler = std::function<void(SimTime now, const NodeId& src, const Bytes& payload)>;
  // Called when this node is challenged; returns the response body.
  using ChallengeHandler = std::function<Bytes(const ChallengeFrame&)>;
  // Called when a challenge response from `responder` arrives.
  using ChallengeResponseHandler = std::function<void(const ChallengeResponseFrame&)>;

  struct Stats {
    uint64_t packets_sent = 0;
    uint64_t packets_received = 0;
    uint64_t acks_sent = 0;
    uint64_t acks_received = 0;
    uint64_t retransmits = 0;
    uint64_t duplicates = 0;
    uint64_t verify_failures = 0;
    uint64_t dropped_suspended = 0;
    // Batched/async signing.
    uint64_t batch_commits_signed = 0;    // Windows this node sealed.
    uint64_t peer_commits_verified = 0;   // Peer windows verified (1 RSA each).
    uint64_t frames_deferred = 0;         // Frames dropped on a chain gap
                                          // (recovered by retransmission).
    // Durable commit (RunConfig::durable_commit).
    uint64_t durable_deferred_frames = 0;   // Frames held for the watermark.
    uint64_t durable_deferred_commits = 0;  // Window commitments held.
    uint64_t durable_forced_flushes = 0;    // Group commits forced at release.
    uint64_t max_released_auth_seq = 0;     // Highest auth seq put on the wire.
    uint64_t durable_gate_violations = 0;   // Auths released above the
                                            // watermark; must stay 0.
  };

  Transport(NodeId id, const RunConfig* cfg, TamperEvidentLog* log, const Signer* signer,
            SimNetwork* net, const KeyRegistry* registry, AuthenticatorStore* auth_store);

  void SetPacketHandler(PacketHandler h) { packet_handler_ = std::move(h); }
  void SetChallengeHandler(ChallengeHandler h) { challenge_handler_ = std::move(h); }
  void SetChallengeResponseHandler(ChallengeResponseHandler h) {
    challenge_response_handler_ = std::move(h);
  }

  // Sends one guest packet. Logs SEND + authenticator in accountable mode.
  void SendPacket(SimTime now, const NodeId& dst, Bytes payload);

  // Retransmits unacknowledged messages past the timeout. In
  // batched/async modes also closes overdue signature windows and
  // integrates finished background signatures.
  void Tick(SimTime now);

  // Batched/async modes: seals the current window (for kAsync this is
  // the barrier that waits for the signer thread to drain) and pushes a
  // kCommit frame to every peer this transport has chain state with, so
  // their pending entries can be verified. No-op in kSync mode. The
  // caller still drives the network to deliver the frames.
  void Flush(SimTime now);

  // NetworkDelegate.
  void OnFrame(SimTime now, const NodeId& src, ByteView frame) override;

  // §4.6: stop/resume communication with a peer that ignores a challenge.
  void Suspend(const NodeId& peer) { suspended_.insert(peer); }
  void Resume(const NodeId& peer) { suspended_.erase(peer); }
  bool IsSuspended(const NodeId& peer) const { return suspended_.count(peer) > 0; }

  // Sends a challenge about `accused` to `witness` (typically broadcast by
  // the caller to every peer).
  void SendChallenge(SimTime now, const NodeId& witness, const ChallengeFrame& challenge);

  // Peers whose retransmit budget was exhausted ("suspected", §4.3).
  const std::set<NodeId>& suspected() const { return suspected_; }
  const Stats& stats() const { return stats_; }
  // First-failure descriptions, for tests and diagnostics.
  const std::vector<std::string>& violations() const { return violations_; }

  // Wall-clock seconds spent in signing/verification and in log writes
  // (the Figure 6 cost split).
  double crypto_seconds() const { return crypto_seconds_; }
  double logging_seconds() const { return logging_seconds_; }

  const NodeId& id() const { return id_; }

 private:
  struct PendingSend {
    Bytes frame;  // Wire bytes, resent verbatim.
    Bytes entry_content;
    SimTime first_sent = 0;
    SimTime last_sent = 0;
    int retransmits = 0;
    NodeId dst;
  };

  void HandleData(SimTime now, const NodeId& src, ByteView body);
  void HandleAck(SimTime now, const NodeId& src, ByteView body);
  void HandlePlain(SimTime now, const NodeId& src, ByteView body);
  void HandleChallenge(SimTime now, const NodeId& src, ByteView body);
  void HandleChallengeResponse(SimTime now, const NodeId& src, ByteView body);
  void Violation(const std::string& what);

  // ----- batched/async signing -----
  // Our incrementally tracked view of one peer's hash chain.
  struct PeerChainView {
    uint64_t tip_seq = 0;  // Highest seq we have derived a hash for.
    Hash256 tip_hash;      // h_{tip_seq}.
    // Highest seq covered by a verified signed commitment; everything
    // at or below it has been logged as a PeerCommitRecord.
    uint64_t verified_seq = 0;
    Hash256 verified_hash;  // h_{verified_seq} (the walk start of the
                            // next PeerCommitRecord we log).
    // Derived-but-uncommitted state, pruned at each verified commit.
    std::map<uint64_t, Hash256> hashes;
    std::map<uint64_t, ChainLink> links;
  };

  void SendPacketBatched(SimTime now, const NodeId& dst, MessageRecord rec);
  void HandleBatchData(SimTime now, const NodeId& src, ByteView body);
  void HandleBatchAck(SimTime now, const NodeId& src, ByteView body);
  void HandleCommit(SimTime now, const NodeId& src, ByteView body);
  // Extends (and cross-checks) the stored view of src's chain with the
  // tail, then processes its commitment (one RSA verify per new window,
  // logging a PeerCommitRecord). Returns false when the frame cannot be
  // processed (gap -> wait for retransmission, or a violation).
  // On success *want_hash (if given) receives the derived h_{want_seq}.
  bool ApplyChainTail(const NodeId& src, const ChainTail& tail, uint64_t want_seq = 0,
                      Hash256* want_hash = nullptr);
  // The links extending dst's view of our own chain up to the log tip.
  // `advance` records the tip as known to dst (data/ack frames advance;
  // kCommit frames do not, so a dropped commit never leaves a gap).
  ChainTail BuildTailFor(const NodeId& dst, bool advance);
  // Signs (or enqueues) a window commitment at the log tip when the
  // open window has reached sign_batch_entries.
  void MaybeCloseWindow();
  void RequestCommit(uint64_t seq);
  void IntegrateCommit(Authenticator a);
  void PumpAsync();

  // ----- durable commit (RunConfig::durable_commit) -----
  // A frame whose authenticator commits to entries not yet behind the
  // log sink's durability watermark. It is held here and put on the
  // wire by ReleaseDurable once DurableSeq() reaches release_seq.
  struct DeferredFrame {
    uint64_t release_seq = 0;
    NodeId dst;
    Bytes wire;
    bool is_data = false;  // Register the PendingSend at release time.
    uint64_t msg_id = 0;
    Bytes entry_content;
    bool is_ack = false;  // Flip acks_sent_[ack_key].released at release.
    std::pair<NodeId, uint64_t> ack_key;
  };
  bool DurableFor(uint64_t seq) const;
  // Accounting at the moment an authenticator actually goes on the wire;
  // durable_gate_violations counts releases above the watermark.
  void NoteAuthRelease(uint64_t seq);
  // Sends every deferred frame and integrates every parked commitment
  // the watermark now covers. With `force`, first flushes the sink so
  // everything parked is released -- Tick and Flush use this, making one
  // group commit per quantum the worst-case release latency.
  void ReleaseDurable(SimTime now, bool force);

  NodeId id_;
  const RunConfig* cfg_;
  TamperEvidentLog* log_;
  const Signer* signer_;
  SimNetwork* net_;
  const KeyRegistry* registry_;
  AuthenticatorStore* auth_store_;

  PacketHandler packet_handler_;
  ChallengeHandler challenge_handler_;
  ChallengeResponseHandler challenge_response_handler_;

  uint64_t send_counter_ = 0;
  std::map<std::pair<NodeId, uint64_t>, PendingSend> unacked_;
  // (src, msg_id) -> serialized ack frame, resent on duplicate data.
  // `released` is false while the ack sits in deferred_frames_: a
  // retransmitted data frame must not push the ack past the gate early.
  struct SentAck {
    Bytes wire;
    bool released = true;
  };
  std::map<std::pair<NodeId, uint64_t>, SentAck> acks_sent_;
  std::deque<DeferredFrame> deferred_frames_;
  std::vector<Authenticator> pending_commits_;  // Signed, not yet durable.
  std::set<NodeId> suspended_;
  std::set<NodeId> suspected_;

  // Batched/async signing state.
  std::map<NodeId, PeerChainView> peer_chains_;
  std::map<NodeId, uint64_t> peer_known_seq_;  // Links already shipped per peer.
  Authenticator latest_commit_;                // seq == 0 until the first window closes.
  uint64_t last_commit_request_seq_ = 0;
  std::unique_ptr<AsyncSignPipeline> sign_pipeline_;  // kAsync only.

  Stats stats_;
  std::vector<std::string> violations_;
  double crypto_seconds_ = 0;
  double logging_seconds_ = 0;

  // Publishes stats_ into the obs registry as callback gauges (the
  // struct stays the per-instance compatibility view). Declared last so
  // the callbacks unregister before anything they read is destroyed.
  void RegisterObsMetrics();
  std::vector<obs::Registry::CallbackHandle> obs_handles_;
};

}  // namespace avm

#endif  // SRC_AVMM_TRANSPORT_H_
