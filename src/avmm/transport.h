// The accountable transport: commitment protocol of §4.3 plus the
// multi-party challenge mechanism of §4.6.
//
// Outgoing guest packets are logged as SEND entries and wrapped in
// DataFrames carrying an authenticator; incoming frames are verified,
// logged as RECV entries, acknowledged with the receiver's own
// authenticator, and retransmitted by the sender until acknowledged.
// In the non-accountable configurations (bare-hw / vm-norec / vm-rec) the
// same class ships plain frames with no logging, signatures or acks.
#ifndef SRC_AVMM_TRANSPORT_H_
#define SRC_AVMM_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/avmm/config.h"
#include "src/avmm/message.h"
#include "src/net/network.h"
#include "src/tel/log.h"
#include "src/tel/verifier.h"

namespace avm {

class Transport : public NetworkDelegate {
 public:
  // Called with each verified incoming guest payload.
  using PacketHandler = std::function<void(SimTime now, const NodeId& src, const Bytes& payload)>;
  // Called when this node is challenged; returns the response body.
  using ChallengeHandler = std::function<Bytes(const ChallengeFrame&)>;
  // Called when a challenge response from `responder` arrives.
  using ChallengeResponseHandler = std::function<void(const ChallengeResponseFrame&)>;

  struct Stats {
    uint64_t packets_sent = 0;
    uint64_t packets_received = 0;
    uint64_t acks_sent = 0;
    uint64_t acks_received = 0;
    uint64_t retransmits = 0;
    uint64_t duplicates = 0;
    uint64_t verify_failures = 0;
    uint64_t dropped_suspended = 0;
  };

  Transport(NodeId id, const RunConfig* cfg, TamperEvidentLog* log, const Signer* signer,
            SimNetwork* net, const KeyRegistry* registry, AuthenticatorStore* auth_store);

  void SetPacketHandler(PacketHandler h) { packet_handler_ = std::move(h); }
  void SetChallengeHandler(ChallengeHandler h) { challenge_handler_ = std::move(h); }
  void SetChallengeResponseHandler(ChallengeResponseHandler h) {
    challenge_response_handler_ = std::move(h);
  }

  // Sends one guest packet. Logs SEND + authenticator in accountable mode.
  void SendPacket(SimTime now, const NodeId& dst, Bytes payload);

  // Retransmits unacknowledged messages past the timeout.
  void Tick(SimTime now);

  // NetworkDelegate.
  void OnFrame(SimTime now, const NodeId& src, ByteView frame) override;

  // §4.6: stop/resume communication with a peer that ignores a challenge.
  void Suspend(const NodeId& peer) { suspended_.insert(peer); }
  void Resume(const NodeId& peer) { suspended_.erase(peer); }
  bool IsSuspended(const NodeId& peer) const { return suspended_.count(peer) > 0; }

  // Sends a challenge about `accused` to `witness` (typically broadcast by
  // the caller to every peer).
  void SendChallenge(SimTime now, const NodeId& witness, const ChallengeFrame& challenge);

  // Peers whose retransmit budget was exhausted ("suspected", §4.3).
  const std::set<NodeId>& suspected() const { return suspected_; }
  const Stats& stats() const { return stats_; }
  // First-failure descriptions, for tests and diagnostics.
  const std::vector<std::string>& violations() const { return violations_; }

  // Wall-clock seconds spent in signing/verification and in log writes
  // (the Figure 6 cost split).
  double crypto_seconds() const { return crypto_seconds_; }
  double logging_seconds() const { return logging_seconds_; }

  const NodeId& id() const { return id_; }

 private:
  struct PendingSend {
    Bytes frame;  // Wire bytes, resent verbatim.
    Bytes entry_content;
    SimTime first_sent = 0;
    SimTime last_sent = 0;
    int retransmits = 0;
    NodeId dst;
  };

  void HandleData(SimTime now, const NodeId& src, ByteView body);
  void HandleAck(SimTime now, const NodeId& src, ByteView body);
  void HandlePlain(SimTime now, const NodeId& src, ByteView body);
  void HandleChallenge(SimTime now, const NodeId& src, ByteView body);
  void HandleChallengeResponse(SimTime now, const NodeId& src, ByteView body);
  void Violation(const std::string& what);

  NodeId id_;
  const RunConfig* cfg_;
  TamperEvidentLog* log_;
  const Signer* signer_;
  SimNetwork* net_;
  const KeyRegistry* registry_;
  AuthenticatorStore* auth_store_;

  PacketHandler packet_handler_;
  ChallengeHandler challenge_handler_;
  ChallengeResponseHandler challenge_response_handler_;

  uint64_t send_counter_ = 0;
  std::map<std::pair<NodeId, uint64_t>, PendingSend> unacked_;
  // (src, msg_id) -> serialized ack frame, resent on duplicate data.
  std::map<std::pair<NodeId, uint64_t>, Bytes> acks_sent_;
  std::set<NodeId> suspended_;
  std::set<NodeId> suspected_;

  Stats stats_;
  std::vector<std::string> violations_;
  double crypto_seconds_ = 0;
  double logging_seconds_ = 0;
};

}  // namespace avm

#endif  // SRC_AVMM_TRANSPORT_H_
