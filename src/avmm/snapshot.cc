#include "src/avmm/snapshot.h"

#include <cstring>
#include <stdexcept>

#include "src/compress/lzss.h"
#include "src/util/serde.h"

namespace avm {

Bytes SnapshotMeta::Serialize() const {
  Writer w;
  w.U64(snapshot_id);
  w.U64(icount);
  w.U64(sim_time);
  w.Raw(root.view());
  w.U32(total_pages);
  w.U32(incremental_pages);
  w.U64(stored_bytes);
  return w.Take();
}

SnapshotMeta SnapshotMeta::Deserialize(ByteView data) {
  Reader r(data);
  SnapshotMeta m;
  m.snapshot_id = r.U64();
  m.icount = r.U64();
  m.sim_time = r.U64();
  m.root = Hash256::FromBytes(r.Raw(32));
  m.total_pages = r.U32();
  m.incremental_pages = r.U32();
  m.stored_bytes = r.U64();
  r.ExpectEnd();
  return m;
}

Bytes SnapshotDelta::Serialize() const {
  Writer w;
  w.Blob(meta.Serialize());
  w.Blob(cpu_state);
  w.U32(static_cast<uint32_t>(pages.size()));
  for (const auto& [idx, data] : pages) {
    w.U32(idx);
    w.Blob(data);
  }
  return w.Take();
}

SnapshotDelta SnapshotDelta::Deserialize(ByteView data) {
  Reader r(data);
  SnapshotDelta d;
  d.meta = SnapshotMeta::Deserialize(r.Blob());
  d.cpu_state = r.Blob();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; i++) {
    uint32_t idx = r.U32();
    d.pages.emplace_back(idx, r.Blob());
  }
  r.ExpectEnd();
  return d;
}

Bytes MaterializedState::Serialize() const {
  Writer w;
  w.Blob(cpu.Serialize());
  w.Blob(LzssCompress(memory));
  w.Raw(root.view());
  return w.Take();
}

MaterializedState MaterializedState::Deserialize(ByteView data) {
  Reader r(data);
  MaterializedState st;
  Bytes cpu_bytes = r.Blob();
  Bytes memory_lzss = r.Blob();
  Hash256 claimed = Hash256::FromBytes(r.Raw(32));
  r.ExpectEnd();
  st.cpu = CpuState::Deserialize(cpu_bytes);
  try {
    st.memory = LzssDecompress(memory_lzss);
    st.root = ComputeStateRoot(st.cpu, st.memory);
  } catch (const std::exception& e) {
    throw SerdeError(std::string("materialized state undecodable: ") + e.what());
  }
  if (st.root != claimed) {
    throw SerdeError("materialized state does not hash to its claimed root");
  }
  return st;
}

Hash256 ComputeStateRoot(const CpuState& cpu, ByteView memory) {
  if (memory.size() % kPageSize != 0) {
    throw std::invalid_argument("ComputeStateRoot: memory not page aligned");
  }
  size_t pages = memory.size() / kPageSize;
  std::vector<Hash256> leaves;
  leaves.reserve(pages + 1);
  for (size_t i = 0; i < pages; i++) {
    leaves.push_back(MerkleLeafHash(memory.subspan(i * kPageSize, kPageSize)));
  }
  leaves.push_back(MerkleLeafHash(cpu.Serialize()));
  return MerkleTree(std::move(leaves)).Root();
}

Hash256 ComputeStateRoot(const Machine& m) {
  std::vector<Hash256> leaves;
  leaves.reserve(m.PageCount() + 1);
  for (size_t i = 0; i < m.PageCount(); i++) {
    leaves.push_back(MerkleLeafHash(m.PageData(i)));
  }
  leaves.push_back(MerkleLeafHash(m.cpu().Serialize()));
  return MerkleTree(std::move(leaves)).Root();
}

void SnapshotStore::Add(SnapshotDelta delta) {
  uint64_t id = delta.meta.snapshot_id;
  if (deltas_.count(id) > 0) {
    throw std::invalid_argument("SnapshotStore::Add: duplicate snapshot id");
  }
  deltas_.emplace(id, std::move(delta));
}

const SnapshotDelta& SnapshotStore::Get(uint64_t snapshot_id) const {
  auto it = deltas_.find(snapshot_id);
  if (it == deltas_.end()) {
    throw std::out_of_range("SnapshotStore::Get: unknown snapshot");
  }
  return it->second;
}

bool SnapshotStore::Has(uint64_t snapshot_id) const {
  return deltas_.count(snapshot_id) > 0;
}

MaterializedState SnapshotStore::Materialize(uint64_t snapshot_id, size_t mem_size) const {
  if (!Has(snapshot_id)) {
    throw std::out_of_range("SnapshotStore::Materialize: unknown snapshot");
  }
  MaterializedState st;
  st.memory.assign(mem_size, 0);
  for (uint64_t id = 0; id <= snapshot_id; id++) {
    const SnapshotDelta& d = Get(id);
    for (const auto& [idx, data] : d.pages) {
      if ((idx + 1) * static_cast<size_t>(kPageSize) > mem_size || data.size() != kPageSize) {
        throw std::invalid_argument("SnapshotStore::Materialize: bad page");
      }
      std::memcpy(st.memory.data() + idx * kPageSize, data.data(), kPageSize);
    }
    if (id == snapshot_id) {
      st.cpu = CpuState::Deserialize(d.cpu_state);
    }
  }
  st.root = ComputeStateRoot(st.cpu, st.memory);
  return st;
}

uint64_t SnapshotStore::TransferBytesUpTo(uint64_t snapshot_id) const {
  uint64_t total = 0;
  for (uint64_t id = 1; id <= snapshot_id; id++) {
    total += Get(id).meta.stored_bytes;
  }
  return total;
}

SnapshotMeta SnapshotManager::Take(Machine& m, SimTime sim_time) {
  WallTimer timer;
  SnapshotDelta delta;
  delta.meta.snapshot_id = next_id_++;
  delta.meta.icount = m.cpu().icount;
  delta.meta.sim_time = sim_time;
  delta.meta.total_pages = static_cast<uint32_t>(m.PageCount());
  delta.cpu_state = m.cpu().Serialize();

  std::vector<uint32_t> dirty = m.CollectDirtyPages();
  for (uint32_t idx : dirty) {
    ByteView page = m.PageData(idx);
    delta.pages.emplace_back(idx, Bytes(page.begin(), page.end()));
  }
  m.ClearDirtyPages();

  delta.meta.incremental_pages = static_cast<uint32_t>(delta.pages.size());
  delta.meta.root = ComputeStateRoot(m);
  delta.meta.stored_bytes = delta.Serialize().size();

  SnapshotMeta meta = delta.meta;
  store_->Add(std::move(delta));
  snapshot_seconds_ += timer.ElapsedSeconds();
  return meta;
}

}  // namespace avm
