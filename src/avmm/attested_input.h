// Secure local input (§7.2's "using trust to get stronger guarantees").
//
// The one cheat class AVMs cannot catch is forged *local* input: a
// program outside the AVM feeding synthesized keystrokes through the
// legitimate input channel replays perfectly (§4.8, §5.4). The paper's
// proposed fix is crypto support in the input device itself: "keyboards
// could sign keystroke events before reporting them to the OS, and an
// auditor could verify that the keystrokes are genuine using the
// keyboard's public key."
//
// AttestedInput implements exactly that. The input device holds a
// keypair certified in the key registry under the device identity
// "<node>/input". Each event is signed over (device id, event index,
// code); the AVMM logs the attestation alongside the input value, and
// the syntactic check (when the scenario declares attested input)
// verifies every consumed input event. A forged event either carries no
// valid attestation (detected) or must reuse an old one (detected by the
// strictly increasing event index).
#ifndef SRC_AVMM_ATTESTED_INPUT_H_
#define SRC_AVMM_ATTESTED_INPUT_H_

#include <cstdint>
#include <string>

#include "src/crypto/keys.h"
#include "src/tel/log.h"
#include "src/tel/verifier.h"
#include "src/util/bytes.h"
#include "src/util/serde.h"

namespace avm {

// Device identity under which an input attestor's public key is
// registered: "<node id>/input".
NodeId InputDeviceId(const NodeId& node);

struct AttestedInputEvent {
  NodeId device;       // The signing device's registry identity.
  uint64_t index = 0;  // Strictly increasing per device.
  uint32_t code = 0;   // The input event (key code).
  Bytes signature;     // Over SignedPayload(device, index, code).

  static Bytes SignedPayload(const NodeId& device, uint64_t index, uint32_t code);
  Bytes Serialize() const;
  static AttestedInputEvent Deserialize(ByteView data);

  bool Verify(const KeyRegistry& registry) const;
};

// The "hardware" side: lives with the physical keyboard, not with the
// (untrusted) machine. Cheats running on the machine cannot produce
// valid attestations because the signing key never leaves the device.
class InputAttestor {
 public:
  InputAttestor(const NodeId& node, SignatureScheme scheme, Prng& rng)
      : signer_(InputDeviceId(node), scheme, rng) {}

  AttestedInputEvent Attest(uint32_t code) {
    AttestedInputEvent e;
    e.device = signer_.id();
    e.index = next_index_++;
    e.code = code;
    e.signature = signer_.Sign(AttestedInputEvent::SignedPayload(e.device, e.index, e.code));
    return e;
  }

  const Signer& signer() const { return signer_; }

 private:
  Signer signer_;
  uint64_t next_index_ = 0;
};

// Streaming form of the audit-side check: Feed() entries in log order;
// the first failure is the scan's verdict. Factored out so the chunked
// pipelined audit (src/audit/pipeline.h) can run the identical check
// without materializing the segment.
class AttestedInputScanner {
 public:
  AttestedInputScanner(const NodeId& node, const KeyRegistry& registry);

  CheckResult Feed(const LogEntry& e);

  // Checkpoint support (src/audit/checkpoint.h): the replay-protection
  // cursor (last seen device index) mid-scan, so a resumed audit
  // rejects a replayed attestation exactly as a from-genesis scan does.
  void SerializeState(Writer& w) const;
  void RestoreState(Reader& r);

 private:
  NodeId device_;
  const KeyRegistry& registry_;
  bool device_known_;
  uint64_t last_index_ = 0;
  bool saw_any_ = false;
};

// Audit-side check over a log segment: every consumed input event (a
// PortIn on the INPUT port with a nonzero value) must carry a valid
// attestation with strictly increasing indices. Runs as part of the
// syntactic check when the scenario declares attested input.
CheckResult VerifyAttestedInputs(const LogSegment& segment, const KeyRegistry& registry);

}  // namespace avm

#endif  // SRC_AVMM_ATTESTED_INPUT_H_
