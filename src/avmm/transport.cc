#include "src/avmm/transport.h"

#include <algorithm>

#include "src/util/serde.h"

namespace avm {

Transport::Transport(NodeId id, const RunConfig* cfg, TamperEvidentLog* log, const Signer* signer,
                     SimNetwork* net, const KeyRegistry* registry, AuthenticatorStore* auth_store)
    : id_(std::move(id)),
      cfg_(cfg),
      log_(log),
      signer_(signer),
      net_(net),
      registry_(registry),
      auth_store_(auth_store) {
  if (cfg_->BatchedSigning() && cfg_->sign_mode == SignMode::kAsync && signer_ != nullptr) {
    sign_pipeline_ = std::make_unique<AsyncSignPipeline>(id_, signer_);
  }
  RegisterObsMetrics();
}

void Transport::RegisterObsMetrics() {
  auto& reg = obs::Registry::Global();
  const obs::Labels ls{{"node", std::string(id_)}};
  auto pub = [&](const char* name, const uint64_t* field) {
    obs_handles_.push_back(
        reg.RegisterCallbackGauge(name, ls, [field] { return static_cast<int64_t>(*field); }));
  };
  pub("transport_packets_sent", &stats_.packets_sent);
  pub("transport_packets_received", &stats_.packets_received);
  pub("transport_acks_sent", &stats_.acks_sent);
  pub("transport_acks_received", &stats_.acks_received);
  pub("transport_retransmits", &stats_.retransmits);
  pub("transport_duplicates", &stats_.duplicates);
  pub("transport_verify_failures", &stats_.verify_failures);
  pub("transport_dropped_suspended", &stats_.dropped_suspended);
  pub("transport_batch_commits_signed", &stats_.batch_commits_signed);
  pub("transport_peer_commits_verified", &stats_.peer_commits_verified);
  pub("transport_frames_deferred", &stats_.frames_deferred);
  pub("transport_durable_deferred_frames", &stats_.durable_deferred_frames);
  pub("transport_durable_deferred_commits", &stats_.durable_deferred_commits);
  pub("transport_durable_forced_flushes", &stats_.durable_forced_flushes);
  pub("transport_max_released_auth_seq", &stats_.max_released_auth_seq);
  pub("transport_durable_gate_violations", &stats_.durable_gate_violations);
  obs_handles_.push_back(reg.RegisterCallbackGauge("transport_crypto_ms", ls, [this] {
    return static_cast<int64_t>(crypto_seconds_ * 1e3);
  }));
  obs_handles_.push_back(reg.RegisterCallbackGauge("transport_logging_ms", ls, [this] {
    return static_cast<int64_t>(logging_seconds_ * 1e3);
  }));
}

void Transport::Violation(const std::string& what) {
  stats_.verify_failures++;
  violations_.push_back(what);
}

void Transport::SendPacket(SimTime now, const NodeId& dst, Bytes payload) {
  if (suspended_.count(dst) > 0) {
    stats_.dropped_suspended++;
    return;
  }
  stats_.packets_sent++;

  if (!cfg_->TamperEvident()) {
    MessageRecord rec{id_, dst, ++send_counter_, std::move(payload)};
    net_->SendFrame(now, id_, dst, WrapFrame(FrameType::kPlainData, rec.Serialize()));
    return;
  }

  MessageRecord rec{id_, dst, ++send_counter_, std::move(payload)};
  if (cfg_->BatchedSigning()) {
    SendPacketBatched(now, dst, std::move(rec));
    return;
  }
  Bytes rec_bytes = rec.Serialize();

  WallTimer crypto_timer;
  Bytes payload_sig = signer_->Sign(rec_bytes);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();

  Bytes content = MessageEntryContent(rec, payload_sig);
  WallTimer log_timer;
  Hash256 prev = log_->LastHash();
  log_->Append(EntryType::kSend, content);
  logging_seconds_ += log_timer.ElapsedSeconds();

  crypto_timer.Reset();
  Authenticator auth = log_->Authenticate(*signer_);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();

  DataFrame frame{std::move(rec), std::move(payload_sig), prev, std::move(auth)};
  uint64_t auth_seq = frame.auth.seq;
  uint64_t msg_id = frame.msg.msg_id;
  Bytes wire = WrapFrame(FrameType::kData, frame.Serialize());
  if (!DurableFor(auth_seq)) {
    // The authenticator commits to entries a crash could still lose;
    // hold the frame until the group commit catches up (ReleaseDurable).
    stats_.durable_deferred_frames++;
    DeferredFrame d;
    d.release_seq = auth_seq;
    d.dst = dst;
    d.wire = std::move(wire);
    d.is_data = true;
    d.msg_id = msg_id;
    d.entry_content = std::move(content);
    deferred_frames_.push_back(std::move(d));
    return;
  }
  NoteAuthRelease(auth_seq);
  net_->SendFrame(now, id_, dst, wire);

  PendingSend pending;
  pending.frame = std::move(wire);
  pending.entry_content = std::move(content);
  pending.first_sent = now;
  pending.last_sent = now;
  pending.dst = dst;
  unacked_[{dst, msg_id}] = std::move(pending);
}

void Transport::Tick(SimTime now) {
  if (cfg_->BatchedSigning()) {
    // Trace entries appended since the last message may have filled the
    // window; close it so the unsigned tail stays bounded.
    MaybeCloseWindow();
    PumpAsync();
  }
  ReleaseDurable(now, /*force=*/true);
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    PendingSend& p = it->second;
    if (now - p.last_sent >= cfg_->retransmit_timeout) {
      if (p.retransmits >= cfg_->max_retransmits) {
        // §4.3: if acknowledgments never arrive, the sender can only
        // suspect the peer has failed.
        suspected_.insert(p.dst);
        it = unacked_.erase(it);
        continue;
      }
      net_->SendFrame(now, id_, p.dst, p.frame);
      p.last_sent = now;
      p.retransmits++;
      stats_.retransmits++;
    }
    ++it;
  }
}

void Transport::OnFrame(SimTime now, const NodeId& src, ByteView frame) {
  FrameType type;
  Bytes body;
  try {
    type = PeekFrameType(frame);
    body = UnwrapFrame(frame);
  } catch (const SerdeError& e) {
    Violation(std::string("malformed frame from ") + src + ": " + e.what());
    return;
  }
  // Suspension (§4.6) blocks application traffic, but challenge traffic
  // must still flow: answering the challenge is how a suspended-but-
  // correct node clears itself.
  if (suspended_.count(src) > 0 && type != FrameType::kChallenge &&
      type != FrameType::kChallengeResponse) {
    stats_.dropped_suspended++;
    return;
  }
  try {
    switch (type) {
      case FrameType::kData:
        HandleData(now, src, body);
        break;
      case FrameType::kAck:
        HandleAck(now, src, body);
        break;
      case FrameType::kPlainData:
        HandlePlain(now, src, body);
        break;
      case FrameType::kChallenge:
        HandleChallenge(now, src, body);
        break;
      case FrameType::kChallengeResponse:
        HandleChallengeResponse(now, src, body);
        break;
      case FrameType::kBatchData:
        HandleBatchData(now, src, body);
        break;
      case FrameType::kBatchAck:
        HandleBatchAck(now, src, body);
        break;
      case FrameType::kCommit:
        HandleCommit(now, src, body);
        break;
    }
  } catch (const SerdeError& e) {
    Violation(std::string("malformed ") + std::to_string(static_cast<int>(type)) + " frame from " +
              src + ": " + e.what());
  }
}

void Transport::HandlePlain(SimTime now, const NodeId& src, ByteView body) {
  MessageRecord rec = MessageRecord::Deserialize(body);
  if (rec.dst != id_) {
    Violation("plain frame addressed to " + rec.dst);
    return;
  }
  stats_.packets_received++;
  if (packet_handler_) {
    packet_handler_(now, src, rec.payload);
  }
}

void Transport::HandleData(SimTime now, const NodeId& src, ByteView body) {
  DataFrame f = DataFrame::Deserialize(body);
  if (f.msg.dst != id_ || f.msg.src != src || f.auth.node != src) {
    Violation("data frame with inconsistent addressing from " + src);
    return;
  }

  // 1. The payload signature proves the message originated at src
  //    (detects forged messages injected by an intermediary).
  Bytes rec_bytes = f.msg.Serialize();
  WallTimer crypto_timer;
  bool sig_ok = registry_->Verify(src, rec_bytes, f.payload_sig);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();
  if (!sig_ok) {
    Violation("payload signature invalid from " + src);
    return;
  }

  // 2. The authenticator must commit to exactly SEND(m): recompute
  //    h_i = H(h_{i-1} || s_i || SEND || H(content)).
  Bytes content = MessageEntryContent(f.msg, f.payload_sig);
  Hash256 expect = ChainHash(f.prev_hash, f.auth.seq, EntryType::kSend, content);
  if (expect != f.auth.hash) {
    Violation("sender authenticator does not commit to SEND(m) from " + src);
    return;
  }
  crypto_timer.Reset();
  bool auth_ok = f.auth.VerifySignature(*registry_);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();
  if (!auth_ok) {
    Violation("sender authenticator signature invalid from " + src);
    return;
  }
  auth_store_->Add(f.auth, *registry_);

  // Duplicate (retransmitted) data: re-send the identical ack, do not log
  // a second RECV.
  auto key = std::make_pair(src, f.msg.msg_id);
  auto dup = acks_sent_.find(key);
  if (dup != acks_sent_.end()) {
    stats_.duplicates++;
    // A still-deferred ack must not be pushed past the durability gate
    // by a retransmitted data frame; it goes out via ReleaseDurable.
    if (dup->second.released) {
      net_->SendFrame(now, id_, src, dup->second.wire);
    }
    return;
  }

  // 3. Log RECV(m) (signature included, §4.3) and acknowledge with our
  //    own authenticator so the sender can verify we logged it.
  WallTimer log_timer;
  Hash256 prev = log_->LastHash();
  log_->Append(EntryType::kRecv, content);
  logging_seconds_ += log_timer.ElapsedSeconds();

  crypto_timer.Reset();
  Authenticator my_auth = log_->Authenticate(*signer_);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();

  AckFrame ack{id_, src, f.msg.msg_id, Sha256::Digest(content), prev, std::move(my_auth)};
  uint64_t auth_seq = ack.auth.seq;
  Bytes wire = WrapFrame(FrameType::kAck, ack.Serialize());
  stats_.packets_received++;
  if (!DurableFor(auth_seq)) {
    stats_.durable_deferred_frames++;
    acks_sent_[key] = {wire, /*released=*/false};
    DeferredFrame d;
    d.release_seq = auth_seq;
    d.dst = src;
    d.wire = std::move(wire);
    d.is_ack = true;
    d.ack_key = key;
    deferred_frames_.push_back(std::move(d));
    if (packet_handler_) {
      packet_handler_(now, src, f.msg.payload);
    }
    return;
  }
  NoteAuthRelease(auth_seq);
  acks_sent_[key] = {wire, /*released=*/true};
  net_->SendFrame(now, id_, src, wire);
  stats_.acks_sent++;

  if (packet_handler_) {
    packet_handler_(now, src, f.msg.payload);
  }
}

void Transport::HandleAck(SimTime now, const NodeId& src, ByteView body) {
  (void)now;
  AckFrame ack = AckFrame::Deserialize(body);
  if (ack.acker != src || ack.orig_src != id_ || ack.auth.node != src) {
    Violation("ack frame with inconsistent addressing from " + src);
    return;
  }
  auto it = unacked_.find({src, ack.msg_id});
  if (it == unacked_.end()) {
    // Ack for something already acked (duplicate); harmless.
    return;
  }
  const Bytes& content = it->second.entry_content;
  if (ack.content_hash != Sha256::Digest(content)) {
    Violation("ack content hash mismatch from " + src);
    return;
  }
  // The ack's authenticator must commit to RECV(m) with the same content.
  Hash256 expect = ChainHash(ack.prev_hash, ack.auth.seq, EntryType::kRecv, content);
  if (expect != ack.auth.hash) {
    Violation("ack authenticator does not commit to RECV(m) from " + src);
    return;
  }
  WallTimer crypto_timer;
  bool auth_ok = ack.auth.VerifySignature(*registry_);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();
  if (!auth_ok) {
    Violation("ack authenticator signature invalid from " + src);
    return;
  }
  auth_store_->Add(ack.auth, *registry_);

  WallTimer log_timer;
  log_->Append(EntryType::kAck, ack.Serialize());
  logging_seconds_ += log_timer.ElapsedSeconds();

  stats_.acks_received++;
  unacked_.erase(it);
}

// ----------------------------------------------------- batched signing ----

void Transport::IntegrateCommit(Authenticator a) {
  if (cfg_->durable_commit && a.seq > log_->DurableSeq()) {
    // Signed but not yet durable: park it. ReleaseDurable promotes it to
    // latest_commit_ once the group commit catches up, so frames never
    // carry a commitment a crash could orphan.
    stats_.durable_deferred_commits++;
    pending_commits_.push_back(std::move(a));
    return;
  }
  if (a.seq > latest_commit_.seq) {
    latest_commit_ = std::move(a);
  }
}

bool Transport::DurableFor(uint64_t seq) const {
  return !cfg_->durable_commit || log_->DurableSeq() >= seq;
}

void Transport::NoteAuthRelease(uint64_t seq) {
  stats_.max_released_auth_seq = std::max(stats_.max_released_auth_seq, seq);
  if (cfg_->durable_commit && seq > log_->DurableSeq()) {
    stats_.durable_gate_violations++;
  }
}

void Transport::ReleaseDurable(SimTime now, bool force) {
  if (!cfg_->durable_commit || (deferred_frames_.empty() && pending_commits_.empty())) {
    return;
  }
  // Highest seq anything parked is waiting on. Deferred frames are in
  // log order, so the back of the deque bounds the front.
  uint64_t need = 0;
  for (const Authenticator& a : pending_commits_) {
    need = std::max(need, a.seq);
  }
  if (!deferred_frames_.empty()) {
    need = std::max(need, deferred_frames_.back().release_seq);
  }
  if (force && log_->DurableSeq() < need) {
    // One group commit covers everything parked.
    log_->FlushSink();
    stats_.durable_forced_flushes++;
  }
  uint64_t wm = log_->DurableSeq();
  for (auto it = pending_commits_.begin(); it != pending_commits_.end();) {
    if (it->seq <= wm) {
      if (it->seq > latest_commit_.seq) {
        latest_commit_ = std::move(*it);
      }
      it = pending_commits_.erase(it);
    } else {
      ++it;
    }
  }
  while (!deferred_frames_.empty() && deferred_frames_.front().release_seq <= wm) {
    DeferredFrame d = std::move(deferred_frames_.front());
    deferred_frames_.pop_front();
    NoteAuthRelease(d.release_seq);
    net_->SendFrame(now, id_, d.dst, d.wire);
    if (d.is_ack) {
      auto it = acks_sent_.find(d.ack_key);
      if (it != acks_sent_.end()) {
        it->second.released = true;
      }
      stats_.acks_sent++;
    }
    if (d.is_data) {
      PendingSend pending;
      pending.frame = std::move(d.wire);
      pending.entry_content = std::move(d.entry_content);
      pending.first_sent = now;
      pending.last_sent = now;
      pending.dst = d.dst;
      unacked_[{d.dst, d.msg_id}] = std::move(pending);
    }
  }
}

void Transport::PumpAsync() {
  if (sign_pipeline_ == nullptr) {
    return;
  }
  for (Authenticator& a : sign_pipeline_->Drain()) {
    stats_.batch_commits_signed++;
    IntegrateCommit(std::move(a));
  }
}

void Transport::RequestCommit(uint64_t seq) {
  if (seq == 0 || seq <= last_commit_request_seq_ || signer_ == nullptr) {
    return;
  }
  last_commit_request_seq_ = seq;
  if (sign_pipeline_ != nullptr) {
    sign_pipeline_->Enqueue(seq, log_->At(seq).hash);
    return;
  }
  WallTimer crypto_timer;
  Authenticator a = log_->AuthenticateAt(*signer_, seq);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();
  stats_.batch_commits_signed++;
  IntegrateCommit(std::move(a));
}

void Transport::MaybeCloseWindow() {
  uint64_t tip = log_->LastSeq();
  if (tip > last_commit_request_seq_ &&
      tip - last_commit_request_seq_ >= cfg_->sign_batch_entries) {
    RequestCommit(tip);
  }
}

ChainTail Transport::BuildTailFor(const NodeId& dst, bool advance) {
  uint64_t known = peer_known_seq_[dst];
  uint64_t tip = log_->LastSeq();
  ChainTail t;
  t.from_seq = known + 1;
  t.prior_hash = known == 0 ? Hash256::Zero() : log_->At(known).hash;
  t.links.reserve(static_cast<size_t>(tip - known));
  for (uint64_t s = known + 1; s <= tip; s++) {
    t.links.push_back(LinkFor(log_->At(s)));
  }
  t.commit = latest_commit_;
  if (t.commit.seq != 0) {
    NoteAuthRelease(t.commit.seq);
  }
  if (advance) {
    peer_known_seq_[dst] = tip;
  }
  return t;
}

bool Transport::ApplyChainTail(const NodeId& src, const ChainTail& tail, uint64_t want_seq,
                               Hash256* want_hash) {
  PeerChainView& v = peer_chains_[src];
  // A tail that starts beyond our view leaves a hole we cannot walk
  // across; wait for the retransmission that carries the missing links.
  if (tail.from_seq > v.tip_seq + 1) {
    stats_.frames_deferred++;
    return false;
  }
  // The stated prior must match what we already derived for that seq
  // (verified history below the prune line is anchored at verified_hash).
  if (tail.from_seq == 1) {
    if (!tail.prior_hash.IsZero()) {
      Violation("chain tail from " + src + " fakes a nonzero log head");
      return false;
    }
  } else {
    uint64_t p = tail.from_seq - 1;
    const Hash256* known = nullptr;
    if (p == v.verified_seq) {
      known = &v.verified_hash;
    } else if (auto it = v.hashes.find(p); it != v.hashes.end()) {
      known = &it->second;
    } else if (p == v.tip_seq) {
      known = &v.tip_hash;
    }
    if (known == nullptr) {
      // Prior below the prune line with no record: only reachable for
      // seqs already sealed by a verified commitment; trust the walk —
      // any fork is caught at the first overlap with stored state or at
      // the next signed commitment.
      if (p > v.verified_seq) {
        stats_.frames_deferred++;
        return false;
      }
    } else if (*known != tail.prior_hash) {
      Violation("chain tail from " + src + " contradicts its earlier chain");
      return false;
    }
  }
  // Walk every link first (no mutation yet): overlapping seqs must
  // reproduce the stored hashes, new seqs extend the view.
  Hash256 h = tail.prior_hash;
  uint64_t expect = tail.from_seq;
  std::vector<Hash256> walk;
  walk.reserve(tail.links.size());
  for (const ChainLink& l : tail.links) {
    if (l.seq != expect) {
      Violation("chain tail from " + src + " has non-consecutive links");
      return false;
    }
    h = ApplyChainLink(h, l);
    if (l.seq <= v.tip_seq) {
      const Hash256* stored = nullptr;
      if (auto it = v.hashes.find(l.seq); it != v.hashes.end()) {
        stored = &it->second;
      } else if (l.seq == v.tip_seq) {
        stored = &v.tip_hash;
      } else if (l.seq == v.verified_seq) {
        stored = &v.verified_hash;
      }
      if (stored != nullptr && *stored != h) {
        Violation("chain tail from " + src + " rewrites announced entry " +
                  std::to_string(l.seq));
        return false;
      }
    }
    walk.push_back(h);
    expect++;
  }
  // Commit sanity before mutating: a commitment must sit on chain state
  // we can check.
  uint64_t new_tip = tail.links.empty() ? v.tip_seq : tail.links.back().seq;
  uint64_t tip_after = std::max(v.tip_seq, new_tip);
  if (tail.commit.seq > tip_after) {
    Violation("commitment from " + src + " covers entries it never announced");
    return false;
  }

  // Mutate: record the extension.
  for (size_t i = 0; i < tail.links.size(); i++) {
    const ChainLink& l = tail.links[i];
    if (l.seq > v.tip_seq) {
      v.hashes[l.seq] = walk[i];
      v.links[l.seq] = l;
    }
  }
  if (new_tip > v.tip_seq) {
    v.tip_seq = new_tip;
    v.tip_hash = walk.back();
  }
  if (want_hash != nullptr && want_seq != 0) {
    if (auto it = v.hashes.find(want_seq); it != v.hashes.end()) {
      *want_hash = it->second;
    } else {
      // Covered by an already-verified window; report the walk's value.
      for (size_t i = 0; i < tail.links.size(); i++) {
        if (tail.links[i].seq == want_seq) {
          *want_hash = walk[i];
          break;
        }
      }
    }
  }

  // Process the commitment: one RSA verify seals the whole window and
  // produces the auditable PeerCommitRecord.
  if (tail.commit.seq != 0 && tail.commit.seq > v.verified_seq && cfg_->TamperEvident()) {
    if (tail.commit.node != src) {
      Violation("commitment relayed from " + src + " names another node");
      return false;
    }
    auto hit = v.hashes.find(tail.commit.seq);
    if (hit == v.hashes.end() || hit->second != tail.commit.hash) {
      // The signed commitment disagrees with the chain the peer
      // announced to us: equivocation inside the window.
      Violation("signed commitment from " + src + " contradicts its announced chain at seq " +
                std::to_string(tail.commit.seq));
      return false;
    }
    WallTimer crypto_timer;
    bool ok = auth_store_->Add(tail.commit, *registry_);
    crypto_seconds_ += crypto_timer.ElapsedSeconds();
    if (!ok) {
      Violation("batch commitment signature invalid from " + src);
      return false;
    }
    stats_.peer_commits_verified++;

    // Log the proof for later audits of *our* log: the batch walking
    // from our previous verified point to the new commitment.
    PeerCommitRecord rec;
    rec.peer = src;
    rec.batch.prior_seq = v.verified_seq;
    rec.batch.prior_hash = v.verified_hash;
    for (auto it = v.links.upper_bound(v.verified_seq);
         it != v.links.end() && it->first <= tail.commit.seq; ++it) {
      rec.batch.links.push_back(it->second);
    }
    rec.batch.commit = tail.commit;
    WallTimer log_timer;
    log_->Append(EntryType::kInfo, rec.Serialize());
    logging_seconds_ += log_timer.ElapsedSeconds();

    v.verified_seq = tail.commit.seq;
    v.verified_hash = tail.commit.hash;
    v.hashes.erase(v.hashes.begin(), v.hashes.upper_bound(v.verified_seq));
    v.links.erase(v.links.begin(), v.links.upper_bound(v.verified_seq));
    MaybeCloseWindow();
  }
  return true;
}

void Transport::SendPacketBatched(SimTime now, const NodeId& dst, MessageRecord rec) {
  // No per-message RSA: the SEND entry is committed by the hash chain
  // and sealed by the next windowed signature.
  Bytes content = MessageEntryContent(rec, Bytes());
  WallTimer log_timer;
  log_->Append(EntryType::kSend, content);
  logging_seconds_ += log_timer.ElapsedSeconds();
  MaybeCloseWindow();
  PumpAsync();

  uint64_t msg_id = rec.msg_id;
  BatchDataFrame f{std::move(rec), BuildTailFor(dst, /*advance=*/true)};
  Bytes wire = WrapFrame(FrameType::kBatchData, f.Serialize());
  net_->SendFrame(now, id_, dst, wire);

  PendingSend pending;
  pending.frame = std::move(wire);
  pending.entry_content = std::move(content);
  pending.first_sent = now;
  pending.last_sent = now;
  pending.dst = dst;
  unacked_[{dst, msg_id}] = std::move(pending);
}

void Transport::HandleBatchData(SimTime now, const NodeId& src, ByteView body) {
  if (!cfg_->TamperEvident()) {
    Violation("batch data frame in a non-accountable configuration from " + src);
    return;
  }
  BatchDataFrame f = BatchDataFrame::Deserialize(body);
  if (f.msg.dst != id_ || f.msg.src != src) {
    Violation("batch data frame with inconsistent addressing from " + src);
    return;
  }
  if (f.tail.links.empty()) {
    Violation("batch data frame without chain links from " + src);
    return;
  }
  // The tail's last link must be SEND(m): same commitment HandleData
  // checks against a per-message authenticator, here against the chain.
  Bytes content = MessageEntryContent(f.msg, Bytes());
  const ChainLink& send_link = f.tail.links.back();
  if (send_link.type != EntryType::kSend || send_link.content_hash != Sha256::Digest(content)) {
    Violation("sender chain does not commit to SEND(m) from " + src);
    return;
  }
  if (!ApplyChainTail(src, f.tail)) {
    return;
  }

  // Duplicate (retransmitted) data: re-send the identical ack, do not
  // log a second RECV.
  auto key = std::make_pair(src, f.msg.msg_id);
  auto dup = acks_sent_.find(key);
  if (dup != acks_sent_.end()) {
    stats_.duplicates++;
    net_->SendFrame(now, id_, src, dup->second.wire);
    return;
  }

  // Log RECV(m) and acknowledge. The ack's authenticator is our derived
  // chain state, unsigned -- our next windowed commitment covers it.
  WallTimer log_timer;
  Hash256 prev = log_->LastHash();
  log_->Append(EntryType::kRecv, content);
  logging_seconds_ += log_timer.ElapsedSeconds();
  MaybeCloseWindow();
  PumpAsync();

  Authenticator my_auth;
  my_auth.node = id_;
  my_auth.seq = log_->LastSeq();
  my_auth.hash = log_->LastHash();
  AckFrame ack{id_, src, f.msg.msg_id, Sha256::Digest(content), prev, std::move(my_auth)};
  BatchAckFrame baf{std::move(ack), BuildTailFor(src, /*advance=*/true)};
  Bytes wire = WrapFrame(FrameType::kBatchAck, baf.Serialize());
  acks_sent_[key] = {wire, /*released=*/true};
  net_->SendFrame(now, id_, src, wire);
  stats_.acks_sent++;
  stats_.packets_received++;

  if (packet_handler_) {
    packet_handler_(now, src, f.msg.payload);
  }
}

void Transport::HandleBatchAck(SimTime now, const NodeId& src, ByteView body) {
  (void)now;
  if (!cfg_->TamperEvident()) {
    Violation("batch ack frame in a non-accountable configuration from " + src);
    return;
  }
  BatchAckFrame f = BatchAckFrame::Deserialize(body);
  const AckFrame& ack = f.ack;
  if (ack.acker != src || ack.orig_src != id_ || ack.auth.node != src) {
    Violation("batch ack frame with inconsistent addressing from " + src);
    return;
  }
  auto it = unacked_.find({src, ack.msg_id});
  if (it == unacked_.end()) {
    // Ack for something already acked (duplicate); harmless.
    return;
  }
  const Bytes& content = it->second.entry_content;
  if (ack.content_hash != Sha256::Digest(content)) {
    Violation("ack content hash mismatch from " + src);
    return;
  }
  // The acker's chain must contain RECV(m) at the acked seq; the tail it
  // sent at ack time always includes that link.
  const ChainLink* recv_link = nullptr;
  for (const ChainLink& l : f.tail.links) {
    if (l.seq == ack.auth.seq) {
      recv_link = &l;
      break;
    }
  }
  if (recv_link == nullptr || recv_link->type != EntryType::kRecv ||
      recv_link->content_hash != ack.content_hash) {
    Violation("ack chain does not commit to RECV(m) from " + src);
    return;
  }
  Hash256 derived;
  if (!ApplyChainTail(src, f.tail, ack.auth.seq, &derived)) {
    return;  // Gap: the data retransmit will re-trigger the stored ack.
  }
  if (derived != ack.auth.hash) {
    Violation("ack authenticator does not match the acker's chain from " + src);
    return;
  }

  WallTimer log_timer;
  log_->Append(EntryType::kAck, ack.Serialize());
  logging_seconds_ += log_timer.ElapsedSeconds();
  MaybeCloseWindow();
  PumpAsync();

  stats_.acks_received++;
  unacked_.erase(it);
}

void Transport::HandleCommit(SimTime now, const NodeId& src, ByteView body) {
  (void)now;
  if (!cfg_->TamperEvident()) {
    Violation("commit frame in a non-accountable configuration from " + src);
    return;
  }
  CommitFrame f = CommitFrame::Deserialize(body);
  ApplyChainTail(src, f.tail);
}

void Transport::Flush(SimTime now) {
  if (cfg_->BatchedSigning()) {
    RequestCommit(log_->LastSeq());
    if (sign_pipeline_ != nullptr) {
      sign_pipeline_->Barrier();
    }
    PumpAsync();
  }
  // Everything signed is now in hand; make it durable and release it
  // (deferred kSync frames and parked window commitments alike).
  ReleaseDurable(now, /*force=*/true);
  if (!cfg_->BatchedSigning()) {
    return;
  }
  // Push the sealed window to every peer we have chain state with, so
  // their pending entries (and the auditors behind them) are covered.
  // kCommit tails do not advance peer_known_seq_: losing one cannot
  // leave a gap in the links a later frame assumes were delivered.
  for (const auto& [peer, known] : peer_known_seq_) {
    if (peer == id_ || known == 0) {
      continue;
    }
    CommitFrame cf{BuildTailFor(peer, /*advance=*/false)};
    net_->SendFrame(now, id_, peer, WrapFrame(FrameType::kCommit, cf.Serialize()));
  }
}

void Transport::SendChallenge(SimTime now, const NodeId& witness, const ChallengeFrame& challenge) {
  net_->SendFrame(now, id_, witness, WrapFrame(FrameType::kChallenge, challenge.Serialize()));
}

void Transport::HandleChallenge(SimTime now, const NodeId& src, ByteView body) {
  ChallengeFrame c = ChallengeFrame::Deserialize(body);
  if (c.accused == id_) {
    // We are being challenged: answer immediately (a correct node always
    // can; §4.6).
    ChallengeResponseFrame resp;
    resp.responder = id_;
    resp.challenge_id = c.challenge_id;
    resp.body = challenge_handler_ ? challenge_handler_(c) : Bytes();
    net_->SendFrame(now, id_, src, WrapFrame(FrameType::kChallengeResponse, resp.Serialize()));
    return;
  }
  // A peer relayed someone else's challenge: stop communicating with the
  // accused until it responds, and relay the challenge to it.
  Suspend(c.accused);
  net_->SendFrame(now, id_, c.accused, WrapFrame(FrameType::kChallenge, c.Serialize()));
}

void Transport::HandleChallengeResponse(SimTime now, const NodeId& src, ByteView body) {
  (void)now;
  ChallengeResponseFrame r = ChallengeResponseFrame::Deserialize(body);
  if (r.responder != src) {
    Violation("challenge response with inconsistent responder from " + src);
    return;
  }
  Resume(src);
  if (challenge_response_handler_) {
    challenge_response_handler_(r);
  }
}

}  // namespace avm
