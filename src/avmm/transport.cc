#include "src/avmm/transport.h"

#include "src/util/serde.h"

namespace avm {

Transport::Transport(NodeId id, const RunConfig* cfg, TamperEvidentLog* log, const Signer* signer,
                     SimNetwork* net, const KeyRegistry* registry, AuthenticatorStore* auth_store)
    : id_(std::move(id)),
      cfg_(cfg),
      log_(log),
      signer_(signer),
      net_(net),
      registry_(registry),
      auth_store_(auth_store) {}

void Transport::Violation(const std::string& what) {
  stats_.verify_failures++;
  violations_.push_back(what);
}

void Transport::SendPacket(SimTime now, const NodeId& dst, Bytes payload) {
  if (suspended_.count(dst) > 0) {
    stats_.dropped_suspended++;
    return;
  }
  stats_.packets_sent++;

  if (!cfg_->TamperEvident()) {
    MessageRecord rec{id_, dst, ++send_counter_, std::move(payload)};
    net_->SendFrame(now, id_, dst, WrapFrame(FrameType::kPlainData, rec.Serialize()));
    return;
  }

  MessageRecord rec{id_, dst, ++send_counter_, std::move(payload)};
  Bytes rec_bytes = rec.Serialize();

  WallTimer crypto_timer;
  Bytes payload_sig = signer_->Sign(rec_bytes);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();

  Bytes content = MessageEntryContent(rec, payload_sig);
  WallTimer log_timer;
  Hash256 prev = log_->LastHash();
  log_->Append(EntryType::kSend, content);
  logging_seconds_ += log_timer.ElapsedSeconds();

  crypto_timer.Reset();
  Authenticator auth = log_->Authenticate(*signer_);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();

  DataFrame frame{std::move(rec), std::move(payload_sig), prev, std::move(auth)};
  Bytes wire = WrapFrame(FrameType::kData, frame.Serialize());
  net_->SendFrame(now, id_, dst, wire);

  PendingSend pending;
  pending.frame = std::move(wire);
  pending.entry_content = std::move(content);
  pending.first_sent = now;
  pending.last_sent = now;
  pending.dst = dst;
  unacked_[{dst, frame.msg.msg_id}] = std::move(pending);
}

void Transport::Tick(SimTime now) {
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    PendingSend& p = it->second;
    if (now - p.last_sent >= cfg_->retransmit_timeout) {
      if (p.retransmits >= cfg_->max_retransmits) {
        // §4.3: if acknowledgments never arrive, the sender can only
        // suspect the peer has failed.
        suspected_.insert(p.dst);
        it = unacked_.erase(it);
        continue;
      }
      net_->SendFrame(now, id_, p.dst, p.frame);
      p.last_sent = now;
      p.retransmits++;
      stats_.retransmits++;
    }
    ++it;
  }
}

void Transport::OnFrame(SimTime now, const NodeId& src, ByteView frame) {
  FrameType type;
  Bytes body;
  try {
    type = PeekFrameType(frame);
    body = UnwrapFrame(frame);
  } catch (const SerdeError& e) {
    Violation(std::string("malformed frame from ") + src + ": " + e.what());
    return;
  }
  // Suspension (§4.6) blocks application traffic, but challenge traffic
  // must still flow: answering the challenge is how a suspended-but-
  // correct node clears itself.
  if (suspended_.count(src) > 0 && type != FrameType::kChallenge &&
      type != FrameType::kChallengeResponse) {
    stats_.dropped_suspended++;
    return;
  }
  try {
    switch (type) {
      case FrameType::kData:
        HandleData(now, src, body);
        break;
      case FrameType::kAck:
        HandleAck(now, src, body);
        break;
      case FrameType::kPlainData:
        HandlePlain(now, src, body);
        break;
      case FrameType::kChallenge:
        HandleChallenge(now, src, body);
        break;
      case FrameType::kChallengeResponse:
        HandleChallengeResponse(now, src, body);
        break;
    }
  } catch (const SerdeError& e) {
    Violation(std::string("malformed ") + std::to_string(static_cast<int>(type)) + " frame from " +
              src + ": " + e.what());
  }
}

void Transport::HandlePlain(SimTime now, const NodeId& src, ByteView body) {
  MessageRecord rec = MessageRecord::Deserialize(body);
  if (rec.dst != id_) {
    Violation("plain frame addressed to " + rec.dst);
    return;
  }
  stats_.packets_received++;
  if (packet_handler_) {
    packet_handler_(now, src, rec.payload);
  }
}

void Transport::HandleData(SimTime now, const NodeId& src, ByteView body) {
  DataFrame f = DataFrame::Deserialize(body);
  if (f.msg.dst != id_ || f.msg.src != src || f.auth.node != src) {
    Violation("data frame with inconsistent addressing from " + src);
    return;
  }

  // 1. The payload signature proves the message originated at src
  //    (detects forged messages injected by an intermediary).
  Bytes rec_bytes = f.msg.Serialize();
  WallTimer crypto_timer;
  bool sig_ok = registry_->Verify(src, rec_bytes, f.payload_sig);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();
  if (!sig_ok) {
    Violation("payload signature invalid from " + src);
    return;
  }

  // 2. The authenticator must commit to exactly SEND(m): recompute
  //    h_i = H(h_{i-1} || s_i || SEND || H(content)).
  Bytes content = MessageEntryContent(f.msg, f.payload_sig);
  Hash256 expect = ChainHash(f.prev_hash, f.auth.seq, EntryType::kSend, content);
  if (expect != f.auth.hash) {
    Violation("sender authenticator does not commit to SEND(m) from " + src);
    return;
  }
  crypto_timer.Reset();
  bool auth_ok = f.auth.VerifySignature(*registry_);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();
  if (!auth_ok) {
    Violation("sender authenticator signature invalid from " + src);
    return;
  }
  auth_store_->Add(f.auth, *registry_);

  // Duplicate (retransmitted) data: re-send the identical ack, do not log
  // a second RECV.
  auto key = std::make_pair(src, f.msg.msg_id);
  auto dup = acks_sent_.find(key);
  if (dup != acks_sent_.end()) {
    stats_.duplicates++;
    net_->SendFrame(now, id_, src, dup->second);
    return;
  }

  // 3. Log RECV(m) (signature included, §4.3) and acknowledge with our
  //    own authenticator so the sender can verify we logged it.
  WallTimer log_timer;
  Hash256 prev = log_->LastHash();
  log_->Append(EntryType::kRecv, content);
  logging_seconds_ += log_timer.ElapsedSeconds();

  crypto_timer.Reset();
  Authenticator my_auth = log_->Authenticate(*signer_);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();

  AckFrame ack{id_, src, f.msg.msg_id, Sha256::Digest(content), prev, std::move(my_auth)};
  Bytes wire = WrapFrame(FrameType::kAck, ack.Serialize());
  acks_sent_[key] = wire;
  net_->SendFrame(now, id_, src, wire);
  stats_.acks_sent++;
  stats_.packets_received++;

  if (packet_handler_) {
    packet_handler_(now, src, f.msg.payload);
  }
}

void Transport::HandleAck(SimTime now, const NodeId& src, ByteView body) {
  (void)now;
  AckFrame ack = AckFrame::Deserialize(body);
  if (ack.acker != src || ack.orig_src != id_ || ack.auth.node != src) {
    Violation("ack frame with inconsistent addressing from " + src);
    return;
  }
  auto it = unacked_.find({src, ack.msg_id});
  if (it == unacked_.end()) {
    // Ack for something already acked (duplicate); harmless.
    return;
  }
  const Bytes& content = it->second.entry_content;
  if (ack.content_hash != Sha256::Digest(content)) {
    Violation("ack content hash mismatch from " + src);
    return;
  }
  // The ack's authenticator must commit to RECV(m) with the same content.
  Hash256 expect = ChainHash(ack.prev_hash, ack.auth.seq, EntryType::kRecv, content);
  if (expect != ack.auth.hash) {
    Violation("ack authenticator does not commit to RECV(m) from " + src);
    return;
  }
  WallTimer crypto_timer;
  bool auth_ok = ack.auth.VerifySignature(*registry_);
  crypto_seconds_ += crypto_timer.ElapsedSeconds();
  if (!auth_ok) {
    Violation("ack authenticator signature invalid from " + src);
    return;
  }
  auth_store_->Add(ack.auth, *registry_);

  WallTimer log_timer;
  log_->Append(EntryType::kAck, ack.Serialize());
  logging_seconds_ += log_timer.ElapsedSeconds();

  stats_.acks_received++;
  unacked_.erase(it);
}

void Transport::SendChallenge(SimTime now, const NodeId& witness, const ChallengeFrame& challenge) {
  net_->SendFrame(now, id_, witness, WrapFrame(FrameType::kChallenge, challenge.Serialize()));
}

void Transport::HandleChallenge(SimTime now, const NodeId& src, ByteView body) {
  ChallengeFrame c = ChallengeFrame::Deserialize(body);
  if (c.accused == id_) {
    // We are being challenged: answer immediately (a correct node always
    // can; §4.6).
    ChallengeResponseFrame resp;
    resp.responder = id_;
    resp.challenge_id = c.challenge_id;
    resp.body = challenge_handler_ ? challenge_handler_(c) : Bytes();
    net_->SendFrame(now, id_, src, WrapFrame(FrameType::kChallengeResponse, resp.Serialize()));
    return;
  }
  // A peer relayed someone else's challenge: stop communicating with the
  // accused until it responds, and relay the challenge to it.
  Suspend(c.accused);
  net_->SendFrame(now, id_, c.accused, WrapFrame(FrameType::kChallenge, c.Serialize()));
}

void Transport::HandleChallengeResponse(SimTime now, const NodeId& src, ByteView body) {
  (void)now;
  ChallengeResponseFrame r = ChallengeResponseFrame::Deserialize(body);
  if (r.responder != src) {
    Violation("challenge response with inconsistent responder from " + src);
    return;
  }
  Resume(src);
  if (challenge_response_handler_) {
    challenge_response_handler_(r);
  }
}

}  // namespace avm
