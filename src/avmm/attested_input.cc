#include "src/avmm/attested_input.h"

#include "src/util/serde.h"
#include "src/vm/isa.h"
#include "src/vm/trace.h"

namespace avm {

NodeId InputDeviceId(const NodeId& node) {
  return node + "/input";
}

Bytes AttestedInputEvent::SignedPayload(const NodeId& device, uint64_t index, uint32_t code) {
  Writer w;
  w.Str(device);
  w.U64(index);
  w.U32(code);
  return w.Take();
}

Bytes AttestedInputEvent::Serialize() const {
  Writer w;
  w.Str(device);
  w.U64(index);
  w.U32(code);
  w.Blob(signature);
  return w.Take();
}

AttestedInputEvent AttestedInputEvent::Deserialize(ByteView data) {
  Reader r(data);
  AttestedInputEvent e;
  e.device = r.Str();
  e.index = r.U64();
  e.code = r.U32();
  e.signature = r.Blob();
  r.ExpectEnd();
  return e;
}

bool AttestedInputEvent::Verify(const KeyRegistry& registry) const {
  return registry.Verify(device, SignedPayload(device, index, code), signature);
}

AttestedInputScanner::AttestedInputScanner(const NodeId& node, const KeyRegistry& registry)
    : device_(InputDeviceId(node)), registry_(registry), device_known_(registry.Knows(device_)) {}

CheckResult AttestedInputScanner::Feed(const LogEntry& e) {
  if (!device_known_) {
    return CheckResult::Fail("node declares attested input but no device key is registered");
  }
  if (e.type != EntryType::kTraceOther) {
    return CheckResult::Ok();
  }
  TraceEvent ev;
  try {
    ev = TraceEvent::Deserialize(e.content);
  } catch (const SerdeError&) {
    return CheckResult::Fail("malformed trace entry", e.seq);
  }
  if (ev.kind != TraceKind::kPortIn || ev.port != kPortInput || ev.value == 0) {
    return CheckResult::Ok();  // Not a consumed input event.
  }
  // The attestation rides in the event's data field.
  AttestedInputEvent att;
  try {
    att = AttestedInputEvent::Deserialize(ev.data);
  } catch (const SerdeError&) {
    return CheckResult::Fail("consumed input event carries no attestation", e.seq);
  }
  if (att.device != device_) {
    return CheckResult::Fail("input attested by a foreign device", e.seq);
  }
  if (att.code != ev.value) {
    return CheckResult::Fail("attestation covers a different input code", e.seq);
  }
  if (saw_any_ && att.index <= last_index_) {
    return CheckResult::Fail("input attestation replayed (non-increasing index)", e.seq);
  }
  if (!att.Verify(registry_)) {
    return CheckResult::Fail("input attestation signature invalid", e.seq);
  }
  last_index_ = att.index;
  saw_any_ = true;
  return CheckResult::Ok();
}

void AttestedInputScanner::SerializeState(Writer& w) const {
  w.U64(last_index_);
  w.U8(saw_any_ ? 1 : 0);
}

void AttestedInputScanner::RestoreState(Reader& r) {
  last_index_ = r.U64();
  saw_any_ = r.U8() != 0;
}

CheckResult VerifyAttestedInputs(const LogSegment& segment, const KeyRegistry& registry) {
  AttestedInputScanner scanner(segment.node, registry);
  for (const LogEntry& e : segment.entries) {
    CheckResult r = scanner.Feed(e);
    if (!r.ok) {
      return r;
    }
  }
  return CheckResult::Ok();
}

}  // namespace avm
