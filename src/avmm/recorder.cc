#include "src/avmm/recorder.h"

#include <stdexcept>

namespace avm {

namespace {
// Plain per-entry header a conventional VMM trace log would use
// (type + length + icount landmark, no hashes): 13 bytes.
constexpr size_t kPlainEntryHeader = 13;
}  // namespace

Avmm::Avmm(NodeId id, RunConfig cfg, ByteView image, const Signer* signer, SimNetwork* net,
           const KeyRegistry* registry, uint64_t rng_seed)
    : id_(std::move(id)),
      cfg_(cfg),
      signer_(signer),
      machine_(cfg.mem_size, this),
      log_(id_),
      snapshot_mgr_(&snapshot_store_),
      rng_(rng_seed) {
  if (cfg_.TamperEvident() && signer == nullptr) {
    throw std::invalid_argument("Avmm: accountable mode requires a signer");
  }
  machine_.LoadImage(image);
  transport_ = std::make_unique<Transport>(id_, &cfg_, &log_, signer, net, registry, &auth_store_);
  transport_->SetPacketHandler([this](SimTime, const NodeId&, const Bytes& payload) {
    rx_queue_.push_back(payload);
  });
  net->AttachHost(id_, transport_.get());

  if (cfg_.TamperEvident()) {
    // Snapshot 0: the agreed-upon initial image (its Merkle root is the
    // first commitment in the log, so auditors can check the player
    // actually started from the reference image).
    SnapshotMeta meta = snapshot_mgr_.Take(machine_, 0);
    log_.Append(EntryType::kSnapshot, meta.Serialize());
  }
  RegisterObsMetrics();
}

void Avmm::RegisterObsMetrics() {
  auto& reg = obs::Registry::Global();
  const obs::Labels ls{{"node", std::string(id_)}};
  auto pub = [&](const char* name, const uint64_t* field) {
    obs_handles_.push_back(
        reg.RegisterCallbackGauge(name, ls, [field] { return static_cast<int64_t>(*field); }));
  };
  pub("avmm_frames_rendered", &stats_.frames_rendered);
  pub("avmm_guest_packets_sent", &stats_.guest_packets_sent);
  pub("avmm_guest_packets_delivered", &stats_.guest_packets_delivered);
  pub("avmm_clock_reads", &stats_.clock_reads);
  pub("avmm_clock_reads_delayed", &stats_.clock_reads_delayed);
  pub("avmm_trace_events", &stats_.trace_events);
  obs_handles_.push_back(reg.RegisterCallbackGauge(
      "avmm_exec_ms", ls, [this] { return static_cast<int64_t>(exec_seconds_ * 1e3); }));
  obs_handles_.push_back(reg.RegisterCallbackGauge(
      "avmm_record_ms", ls, [this] { return static_cast<int64_t>(record_seconds_ * 1e3); }));
}

Avmm::~Avmm() = default;

void Avmm::AddPeer(const NodeId& peer) {
  peers_.push_back(peer);
}

uint32_t Avmm::SelfIndex() const {
  for (size_t i = 0; i < peers_.size(); i++) {
    if (peers_[i] == id_) {
      return static_cast<uint32_t>(i);
    }
  }
  throw std::logic_error("Avmm::SelfIndex: self not in peer list");
}

void Avmm::PushInput(uint32_t code, Bytes attestation) {
  input_queue_.emplace_back(code, std::move(attestation));
}

uint64_t Avmm::VirtualClockMicros(const Machine& m) const {
  // The machine's instruction count is tied to absolute simulated time:
  // RunQuantum drives it to (now + quantum) * ips each step, so
  // icount / ips *is* the virtual TSC. A §6.5 stall jumps icount forward
  // and thereby consumes future execution budget -- exactly a stalled VM.
  return m.cpu().icount / cfg_.ips_per_us;
}

uint32_t Avmm::ReadClockLo(Machine& m) {
  // `raw` includes previously injected stalls (they advanced icount);
  // consecutive-ness is judged on stall-free time so a busy-wait loop
  // remains one "consecutive" run even while delays are injected
  // (otherwise each delay would end the run and the exponential
  // progression could never pass n = 2).
  uint64_t raw = VirtualClockMicros(m);
  uint64_t unstalled = raw - stall_total_us_;
  stats_.clock_reads++;
  uint64_t applied_delay = 0;
  if (cfg_.clock_read_optimization) {
    // §6.5: whenever the AVMM observes consecutive clock reads within
    // the window, it delays the n-th consecutive read by
    // 2^(n-2) * 50 µs, starting with the second read, up to 5 ms.
    if (consecutive_clock_reads_ > 0 &&
        unstalled - last_clock_raw_us_ < cfg_.clock_opt_window) {
      consecutive_clock_reads_++;
      uint32_t n = consecutive_clock_reads_;
      uint64_t delay = cfg_.clock_opt_base_delay;
      for (uint32_t i = 2; i < n && delay < cfg_.clock_opt_max_delay; i++) {
        delay *= 2;
      }
      if (delay > cfg_.clock_opt_max_delay) {
        delay = cfg_.clock_opt_max_delay;
      }
      // Delaying the read stalls the AVM: PortIn() burns the delay's
      // worth of instruction budget right after this read retires, so
      // virtual time stays equal to simulated time.
      applied_delay = delay;
      pending_stall_us_ = delay;
      stats_.clock_reads_delayed++;
    } else {
      consecutive_clock_reads_ = 1;
    }
    last_clock_raw_us_ = unstalled;
  }
  uint64_t returned = raw + applied_delay;
  if (returned < last_clock_returned_us_) {
    returned = last_clock_returned_us_;  // The TSC never goes backwards.
  }
  last_clock_returned_us_ = returned;
  clock_latch_ = returned;
  return static_cast<uint32_t>(returned);
}

uint32_t Avmm::PortIn(Machine& m, uint16_t port) {
  uint32_t value = 0;
  Bytes attestation;
  switch (port) {
    case kPortClockLo:
      value = ReadClockLo(m);
      break;
    case kPortClockHi:
      // Deterministic relative to the preceding CLOCK_LO read... except
      // that the latch survives snapshots only via the log, so it is
      // recorded like any other input.
      value = static_cast<uint32_t>(clock_latch_ >> 32);
      break;
    case kPortRand:
      value = static_cast<uint32_t>(rng_.Next());
      break;
    case kPortInput:
      if (!input_queue_.empty()) {
        value = input_queue_.front().first;
        attestation = std::move(input_queue_.front().second);
        input_queue_.pop_front();
      }
      break;
    case kPortNetRxLen:
      value = rx_mailbox_len_ ? static_cast<uint32_t>(*rx_mailbox_len_) : 0;
      break;
    case kPortIrqCause:
      // Pure CPU state: deterministic, not logged (replay recomputes it).
      return m.cpu().irq_cause;
    default:
      value = 0;
      break;
  }
  TraceEvent e;
  e.kind = TraceKind::kPortIn;
  e.icount = m.cpu().icount;
  e.port = port;
  e.value = value;
  e.data = std::move(attestation);
  RecordEvent(std::move(e));

  if (pending_stall_us_ != 0) {
    // The §6.5 delay is a real stall: it consumes execution budget. The
    // jump is recorded so the replayer reproduces the identical icount
    // sequence (landmarks of all later events shift with it).
    uint64_t stall_instr = pending_stall_us_ * cfg_.ips_per_us;
    TraceEvent stall;
    stall.kind = TraceKind::kClockStall;
    stall.icount = m.cpu().icount;
    stall.value = static_cast<uint32_t>(stall_instr);
    RecordEvent(std::move(stall));
    m.mutable_cpu().icount += stall_instr;
    stall_total_us_ += pending_stall_us_;
    pending_stall_us_ = 0;
  }
  return value;
}

void Avmm::PortOut(Machine& m, uint16_t port, uint32_t value) {
  switch (port) {
    case kPortConsole: {
      console_output_.push_back(static_cast<uint8_t>(value));
      TraceEvent e;
      e.kind = TraceKind::kOutConsole;
      e.icount = m.cpu().icount;
      e.value = value & 0xff;
      RecordEvent(std::move(e));
      break;
    }
    case kPortDebug: {
      debug_values_.push_back(value);
      TraceEvent e;
      e.kind = TraceKind::kOutDebug;
      e.icount = m.cpu().icount;
      e.value = value;
      RecordEvent(std::move(e));
      break;
    }
    case kPortFrame:
      stats_.frames_rendered++;
      break;
    case kPortNetTxLen: {
      size_t len = value;
      if (len < 4 || len > kMaxPacket) {
        break;  // Malformed guest send; the virtual NIC drops it.
      }
      Bytes tx = m.ReadMemRange(kNetTxBuf, len);
      TraceEvent e;
      e.kind = TraceKind::kOutPacket;
      e.icount = m.cpu().icount;
      e.data = tx;
      RecordEvent(std::move(e));

      uint32_t dst_index = GetU32(tx, 0);
      // Delivered packet: [source index][payload after the dst header].
      Bytes deliver;
      PutU32(deliver, SelfIndex());
      deliver.insert(deliver.end(), tx.begin() + 4, tx.end());
      stats_.guest_packets_sent++;
      if (dst_index == 0xffffffffu) {
        for (const NodeId& p : peers_) {
          if (p != id_) {
            transport_->SendPacket(current_now_, p, deliver);
          }
        }
      } else if (dst_index < peers_.size() && peers_[dst_index] != id_) {
        transport_->SendPacket(current_now_, peers_[dst_index], deliver);
      }
      break;
    }
    case kPortNetRxDone:
      rx_mailbox_len_.reset();
      DeliverPendingRx(m);
      break;
    default:
      break;
  }
}

void Avmm::DeliverPendingRx(Machine& m) {
  if (rx_mailbox_len_ || rx_queue_.empty()) {
    return;
  }
  Bytes pkt = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  if (pkt.size() > kMaxPacket) {
    pkt.resize(kMaxPacket);
  }
  m.WriteMemRange(kNetRxBuf, pkt);
  rx_mailbox_len_ = pkt.size();
  stats_.guest_packets_delivered++;

  TraceEvent e;
  e.kind = TraceKind::kDmaPacket;
  e.icount = m.cpu().icount;
  e.value = cfg_.rx_irq ? 1 : 0;
  e.data = std::move(pkt);
  RecordEvent(std::move(e));

  if (cfg_.rx_irq) {
    m.RaiseIrq(kIrqNetRx);
  }
}

void Avmm::RecordEvent(TraceEvent e) {
  stats_.trace_events++;
  if (!cfg_.RecordsTrace()) {
    return;
  }
  WallTimer timer;
  Bytes ser = e.Serialize();
  vmware_equiv_bytes_ += ser.size() + kPlainEntryHeader;
  if (cfg_.TamperEvident()) {
    log_.Append(ClassifyTraceEvent(e), std::move(ser));
  }
  record_seconds_ += timer.ElapsedSeconds();
}

RunExit Avmm::RunQuantum(SimTime now, SimTime quantum_us) {
  current_now_ = now;

  if (cheat_hook_) {
    cheat_hook_(machine_, now);
  }
  DeliverPendingRx(machine_);

  WallTimer timer;
  // Drive the machine to the icount aligned with the end of this
  // quantum. If a clock stall overshot into this quantum, the machine is
  // already past the target and simply does not execute (it is stalled).
  RunExit exit = machine_.RunUntilIcount((now + quantum_us) * cfg_.ips_per_us);
  exec_seconds_ += timer.ElapsedSeconds();

  transport_->Tick(now + quantum_us);

  if (cfg_.snapshot_interval > 0 && cfg_.TamperEvident() &&
      now + quantum_us - last_snapshot_time_ >= cfg_.snapshot_interval) {
    TakeSnapshot(now + quantum_us);
  }
  current_now_ = now + quantum_us;
  return exit;
}

Authenticator Avmm::CommitLog() const {
  if (signer_ == nullptr) {
    throw std::logic_error("Avmm::CommitLog: no signer");
  }
  // Handing a commitment to an auditor is a release: under
  // durable_commit the covered entries must be behind the watermark
  // first, exactly like the transport's gate.
  if (cfg_.durable_commit && log_.sink() != nullptr) {
    log_.sink()->Flush();
  }
  return log_.Authenticate(*signer_);
}

Authenticator Avmm::CommitLogAt(uint64_t seq) const {
  if (signer_ == nullptr) {
    throw std::logic_error("Avmm::CommitLogAt: no signer");
  }
  if (cfg_.durable_commit && log_.sink() != nullptr && log_.DurableSeq() < seq) {
    log_.sink()->Flush();
  }
  return log_.AuthenticateAt(*signer_, seq);
}

SnapshotMeta Avmm::TakeSnapshot(SimTime now) {
  if (!cfg_.TamperEvident()) {
    throw std::logic_error("Avmm::TakeSnapshot: snapshots require accountable mode");
  }
  SnapshotMeta meta = snapshot_mgr_.Take(machine_, now);
  log_.Append(EntryType::kSnapshot, meta.Serialize());
  last_snapshot_time_ = now;
  return meta;
}

void Avmm::Finish(SimTime now) {
  if (finished_) {
    return;
  }
  finished_ = true;
  if (cfg_.TamperEvident()) {
    TakeSnapshot(now);
    log_.Append(EntryType::kInfo, ToBytes("END"));
    // Barrier order matters: the transport flush drains the background
    // signer and (under durable_commit) releases deferred frames, and
    // only then is the sink flushed -- so the store is never sealed
    // under a signer that still holds queued entries. The driver still
    // has to deliver those frames (scenario Finish settles the network),
    // and frames delivered during that settle can append entries and
    // enqueue fresh sign work; DrainPending is the post-settle barrier.
    transport_->Flush(now);
  }
  log_.FlushSink();
}

void Avmm::DrainPending(SimTime now) {
  if (cfg_.TamperEvident()) {
    transport_->Flush(now);
  }
  log_.FlushSink();
}

}  // namespace avm
