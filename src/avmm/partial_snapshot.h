// Partial, privacy-preserving snapshot transfer (§4.4 / §7.3).
//
// An auditor can "incrementally request the parts of the state that are
// accessed during replay" instead of a full snapshot, and an accuser can
// "use the hash tree to remove any part of the snapshot that is not
// necessary to replay the relevant segment" before handing evidence to a
// third party. PartialSnapshot carries a subset of pages plus Merkle
// inclusion proofs; verification authenticates each included page (and
// the CPU leaf) against the root committed in the tamper-evident log
// without revealing the redacted pages.
#ifndef SRC_AVMM_PARTIAL_SNAPSHOT_H_
#define SRC_AVMM_PARTIAL_SNAPSHOT_H_

#include <optional>
#include <vector>

#include "src/avmm/snapshot.h"
#include "src/crypto/merkle.h"
#include "src/util/bytes.h"

namespace avm {

struct PartialSnapshot {
  Hash256 root;           // Must equal the root in the kSnapshot log entry.
  uint32_t total_pages = 0;
  Bytes cpu_state;        // Always included (replay needs it).
  MerkleProof cpu_proof;
  struct Page {
    uint32_t index;
    Bytes data;
    MerkleProof proof;
  };
  std::vector<Page> pages;

  Bytes Serialize() const;
  static PartialSnapshot Deserialize(ByteView data);

  // Bytes an auditor must transfer (Figure 9's incremental alternative).
  size_t TransferSize() const;
};

// Builds a partial snapshot containing only `pages` (plus the CPU leaf)
// from a fully materialized state.
PartialSnapshot MakePartialSnapshot(const MaterializedState& state,
                                    const std::vector<uint32_t>& pages);

// Verifies every included page and the CPU state against `expected_root`
// (taken from the chain-verified kSnapshot entry). Returns false if any
// proof fails or the root differs.
bool VerifyPartialSnapshot(const PartialSnapshot& snapshot, const Hash256& expected_root);

// Applies a verified partial snapshot onto a machine-sized memory image:
// included pages are written, the rest stay zero (the auditor can fetch
// more pages on demand if replay touches them). Returns the CPU state.
struct PartialState {
  CpuState cpu;
  Bytes memory;                     // total_pages * kPageSize.
  std::vector<bool> present_pages;  // Which pages are authentic.
};
std::optional<PartialState> MaterializePartial(const PartialSnapshot& snapshot,
                                               const Hash256& expected_root);

}  // namespace avm

#endif  // SRC_AVMM_PARTIAL_SNAPSHOT_H_
