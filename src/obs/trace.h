// Phase-attributed trace spans: RAII timers that (a) accumulate exact
// per-phase totals (the §6.6 audit-time breakdown and §6.11 lag come
// from these, not from bench-local arithmetic), (b) feed a registry
// histogram span_us{phase=...} so phase latency distributions appear in
// every export, and (c) buffer Chrome-trace-event records that
// ChromeTraceJson() emits in the Trace Event Format, loadable directly
// in Perfetto / chrome://tracing.
//
// Everything here is behind the runtime gate SetEnabled(): a disabled
// Span is two relaxed loads and no clock read, so instrumented hot
// paths (group commit, per-chunk audit phases, signer) cost nothing in
// the default-off configuration. Enabling telemetry must never change
// protocol behavior — spans observe wall time only.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace avm {
namespace obs {

// Runtime gate for spans, trace buffering and gauge sampling. Cheap
// always-on counters/gauges are NOT gated (they back the Stats
// compatibility views). Default off.
bool Enabled();
void SetEnabled(bool on);

// Microseconds since process start (steady clock): the trace timebase.
uint64_t NowMicros();

// Span phases. One flat taxonomy, dotted by subsystem, so exports line
// up across the audit pipeline, the store write path, the signer and
// the fleet scheduler.
inline constexpr char kPhaseAuditSyntactic[] = "audit.syntactic";
inline constexpr char kPhaseAuditReplay[] = "audit.replay";
inline constexpr char kPhaseAuditRsaVerify[] = "audit.rsa_verify";
inline constexpr char kPhaseAuditCheckpointIo[] = "audit.checkpoint_io";
inline constexpr char kPhaseStoreFlushWait[] = "store.flush_wait";
inline constexpr char kPhaseStoreSeal[] = "store.seal";
inline constexpr char kPhaseStoreArchive[] = "store.archive";
inline constexpr char kPhaseSignerSign[] = "signer.sign";
inline constexpr char kPhaseFleetService[] = "fleet.service";

// RAII span: times the enclosing scope and attributes it to a phase.
// No-op (no clock read, no allocation) while telemetry is disabled;
// the enabled/disabled decision is taken at construction and sticks,
// so a span that straddles a SetEnabled flip stays well-formed.
class Span {
 public:
  // `phase` must outlive the span (use the kPhase* constants or other
  // static strings). `cat` groups phases into Perfetto track colors.
  explicit Span(const char* phase, const char* cat = "avm");
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  // Ends the span early and returns its duration in seconds (0 when
  // telemetry was off at construction). Idempotent.
  double End();

 private:
  const char* phase_;
  const char* cat_;
  uint64_t start_us_ = 0;
  bool active_;
};

// Single timing idiom for benches: runs `fn` under a WallTimer-backed
// span and returns elapsed seconds — always measured, even with
// telemetry off, because benches need the number either way.
template <typename Fn>
double TimeSection(const char* phase, Fn&& fn) {
  const uint64_t t0 = NowMicros();
  {
    Span span(phase, "bench");
    fn();
  }
  return static_cast<double>(NowMicros() - t0) / 1e6;
}

// Exact per-phase aggregates, maintained on every span end while
// enabled (even when the event buffer is full).
struct PhaseTotals {
  uint64_t count = 0;
  uint64_t total_us = 0;
};
double PhaseSeconds(const std::string& phase);
uint64_t PhaseCount(const std::string& phase);
std::vector<std::pair<std::string, PhaseTotals>> PhaseAggregates();

// Chrome Trace Event Format (complete "X" events), one JSON document.
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
std::string ChromeTraceJson();

// Buffered event count and how many were dropped at the buffer cap
// (aggregates above are exact regardless).
size_t TraceEventCount();
uint64_t TraceEventsDropped();

// Clears buffered events and phase aggregates (benches isolate
// sections; tests isolate cases). Does not touch the registry.
void ResetTrace();

}  // namespace obs
}  // namespace avm

#endif  // SRC_OBS_TRACE_H_
