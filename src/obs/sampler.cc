#include "src/obs/sampler.h"

#include <chrono>

#include "src/obs/trace.h"

namespace avm {
namespace obs {

GaugeSampler::GaugeSampler(Registry* registry, uint32_t period_ms, std::string suffix)
    : registry_(registry), period_ms_(period_ms), suffix_(std::move(suffix)) {
  thread_ = std::thread([this] { Loop(); });
}

void GaugeSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void GaugeSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(period_ms_), [this] { return stop_; });
    if (stop_) {
      return;
    }
    if (!Enabled()) {
      continue;
    }
    lock.unlock();  // Sample outside mu_: callbacks may take their own locks.
    registry_->SampleGauges(suffix_);
    ticks_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace obs
}  // namespace avm
