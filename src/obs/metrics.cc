#include "src/obs/metrics.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>

namespace avm {
namespace obs {

size_t Counter::ShardIndex() {
  // Thread-local slot derived once from the thread id: spreads
  // concurrent writers across cache lines without coordination.
  static thread_local const size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return slot;
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kBuckets) {
    return std::numeric_limits<uint64_t>::max();
  }
  return (uint64_t{1} << i) - 1;  // Largest v with bit_width(v) == i.
}

uint64_t Histogram::ApproxQuantile(double q) const {
  const uint64_t n = Count();
  if (n == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; i++) {
    seen += BucketCount(i);
    if (seen > rank) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

Labels NormalizeLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Registry& Registry::Global() {
  // Intentionally leaked: instrumented objects with static storage
  // duration unregister callbacks during teardown, after which a
  // destroyed registry would be a use-after-free.
  static Registry* g = new Registry();
  return *g;
}

Registry::Slot* Registry::GetSlotLocked(const std::string& name, const Labels& labels,
                                        MetricKind kind) {
  Key key{name, labels};
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Slot slot;
    slot.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        slot.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        slot.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        slot.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(std::move(key), std::move(slot)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("obs: metric '" + name + "' re-registered as a different kind");
  }
  return &it->second;
}

Counter* Registry::GetCounter(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetSlotLocked(name, NormalizeLabels(std::move(labels)), MetricKind::kCounter)
      ->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetSlotLocked(name, NormalizeLabels(std::move(labels)), MetricKind::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetHistogramLocked(name, NormalizeLabels(std::move(labels)));
}

Histogram* Registry::GetHistogramLocked(const std::string& name, const Labels& labels) {
  return GetSlotLocked(name, labels, MetricKind::kHistogram)->histogram.get();
}

Registry::CallbackHandle& Registry::CallbackHandle::operator=(CallbackHandle&& o) noexcept {
  if (this != &o) {
    Release();
    reg_ = o.reg_;
    id_ = o.id_;
    o.reg_ = nullptr;
  }
  return *this;
}

void Registry::CallbackHandle::Release() {
  if (reg_ != nullptr) {
    reg_->UnregisterCallback(id_);
    reg_ = nullptr;
  }
}

Registry::CallbackHandle Registry::RegisterCallbackGauge(std::string name, Labels labels,
                                                         std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_callback_id_++;
  callbacks_[id] = Callback{Key{std::move(name), NormalizeLabels(std::move(labels))},
                            std::move(fn)};
  return CallbackHandle(this, id);
}

void Registry::UnregisterCallback(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.erase(id);
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Callback gauges first, summed per key; merged with stored metrics
  // below so a key is one row no matter how it is fed.
  std::map<Key, int64_t> cb_sums;
  for (const auto& [id, cb] : callbacks_) {
    (void)id;
    cb_sums[cb.key] += cb.fn();
  }

  MetricsSnapshot snap;
  snap.rows.reserve(metrics_.size() + cb_sums.size());
  for (const auto& [key, slot] : metrics_) {
    MetricRow row;
    row.kind = slot.kind;
    row.name = key.name;
    row.labels = key.labels;
    switch (slot.kind) {
      case MetricKind::kCounter:
        row.counter_value = slot.counter->Value();
        break;
      case MetricKind::kGauge: {
        row.gauge_value = slot.gauge->Value();
        auto cb = cb_sums.find(key);
        if (cb != cb_sums.end()) {
          row.gauge_value += cb->second;
          cb_sums.erase(cb);
        }
        break;
      }
      case MetricKind::kHistogram: {
        row.hist.count = slot.histogram->Count();
        row.hist.sum = slot.histogram->Sum();
        for (size_t i = 0; i < Histogram::kBuckets; i++) {
          row.hist.buckets[i] = slot.histogram->BucketCount(i);
        }
        break;
      }
    }
    snap.rows.push_back(std::move(row));
  }
  for (const auto& [key, value] : cb_sums) {
    MetricRow row;
    row.kind = MetricKind::kGauge;
    row.name = key.name;
    row.labels = key.labels;
    row.gauge_value = value;
    snap.rows.push_back(std::move(row));
  }
  std::sort(snap.rows.begin(), snap.rows.end(), [](const MetricRow& a, const MetricRow& b) {
    if (a.name != b.name) {
      return a.name < b.name;
    }
    return a.labels < b.labels;
  });
  return snap;
}

void Registry::SampleGauges(const std::string& suffix) {
  std::lock_guard<std::mutex> lock(mu_);
  // Gather first: recording creates histogram slots in metrics_, which
  // would invalidate iteration over it.
  std::map<Key, int64_t> values;
  for (const auto& [key, slot] : metrics_) {
    if (slot.kind == MetricKind::kGauge) {
      values[key] += slot.gauge->Value();
    }
  }
  for (const auto& [id, cb] : callbacks_) {
    (void)id;
    values[cb.key] += cb.fn();
  }
  for (const auto& [key, value] : values) {
    Histogram* h = GetHistogramLocked(key.name + suffix, key.labels);
    h->Record(value > 0 ? static_cast<uint64_t>(value) : 0);
  }
}

}  // namespace obs
}  // namespace avm
