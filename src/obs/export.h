// Telemetry exporters: JSON snapshot and Prometheus text exposition
// over a Registry snapshot, plus atomic whole-file writes (tmp +
// rename) shared with BenchJson so a crashed process never leaves a
// truncated artifact for bench-smoke to parse.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"

namespace avm {
namespace obs {

// Deterministic JSON for one metrics snapshot (rows arrive sorted, all
// values integral, histogram buckets emitted sparsely as [le, count]
// pairs) — stable enough to pin in golden tests.
std::string MetricsJson(const MetricsSnapshot& snap);

// Prometheus text exposition format v0.0.4. Metric names are prefixed
// ("avm_") and sanitized to [a-zA-Z0-9_:]; histograms emit cumulative
// _bucket{le=...} series plus _sum and _count.
std::string PrometheusText(const MetricsSnapshot& snap, const std::string& prefix = "avm_");

// Full process snapshot from the global registry: metrics plus the
// span phase aggregates and trace-buffer occupancy from src/obs/trace.h.
std::string SnapshotJson();

// Writes `content` to `path` via "<path>.tmp" + rename. Returns false
// (and fills *error with a path + errno description, if non-null) on
// any open/write/flush/rename failure; the destination is untouched on
// failure.
bool WriteFileAtomic(const std::string& path, const std::string& content,
                     std::string* error = nullptr);

// Convenience file writers over the global registry/trace buffer.
bool WriteSnapshotJson(const std::string& path, std::string* error = nullptr);
bool WritePrometheus(const std::string& path, std::string* error = nullptr);
bool WriteChromeTrace(const std::string& path, std::string* error = nullptr);

}  // namespace obs
}  // namespace avm

#endif  // SRC_OBS_EXPORT_H_
