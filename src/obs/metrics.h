// Process-wide telemetry metrics: a registry of named counters, gauges
// and log2-bucketed latency histograms, queryable at runtime and
// exportable (src/obs/export.h) as a JSON snapshot or Prometheus text.
//
// The paper's evaluation is an accounting exercise — §6.6 splits audit
// time into syntactic vs. replay phases, §6.11 tracks online-audit lag,
// §6.7 counts traffic bytes — and the registry is where those numbers
// live at runtime instead of in per-subsystem ad-hoc Stats structs.
//
// Design constraints (the audit protocol is the product; telemetry must
// never perturb it):
//  * off the deterministic path: metrics observe, they never branch the
//    protocol. Verdicts, log bytes and the wire format are bit-identical
//    with telemetry on or off (obs_test asserts this).
//  * cheap enough for hot paths: Counter::Inc is one relaxed fetch_add
//    on a cache-line-sharded slot; Histogram::Record is two relaxed
//    fetch_adds plus a bit_width. The expensive parts (clock reads,
//    trace-event buffering) live in src/obs/trace.h behind the runtime
//    gate obs::SetEnabled.
//  * stable handles: Get* pointers stay valid for the registry's
//    lifetime, so instrumented objects cache them at construction.
//
// Existing Stats structs (Transport::Stats, Avmm::Stats, TrafficStats)
// publish into the registry as callback gauges — registered at
// construction, unregistered by the RAII handle — so their accessors
// remain the per-instance compatibility view while the registry holds
// the queryable aggregate. FleetStats migrated fully: its counters ARE
// registry counters and FleetAuditService::stats() is a read-back view.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace avm {
namespace obs {

// Label set attached to a metric, e.g. {{"node","server"}}. Kept sorted
// by key so equal sets compare equal regardless of insertion order.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotone counter, sharded across cache lines so concurrent writers do
// not bounce one hot line. Value() sums the shards (monotone but not a
// point-in-time atomic snapshot, which exporters do not need).
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Inc(uint64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

// Instantaneous signed value (queue depth, watermark lag, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Log2-bucketed histogram for latencies/sizes: bucket i counts values v
// with bit_width(v) == i, i.e. bucket 0 holds v == 0 and bucket i holds
// 2^(i-1) <= v < 2^i. Exact count and sum are kept alongside, so means
// are exact and only quantiles are bucket-resolution approximations.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;  // Values up to 2^39-1 exact; rest clamp.

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  static size_t BucketIndex(uint64_t v) {
    const size_t w = static_cast<size_t>(std::bit_width(v));
    return w < kBuckets ? w : kBuckets - 1;
  }
  // Inclusive upper bound of bucket i (UINT64_MAX for the overflow
  // bucket): the "le" edge Prometheus exposition uses.
  static uint64_t BucketUpperBound(size_t i);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t i) const { return buckets_[i].load(std::memory_order_relaxed); }

  // Bucket-resolution quantile estimate in [0,1]: the upper bound of the
  // bucket holding the q-th sample (0 when empty).
  uint64_t ApproxQuantile(double q) const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Point-in-time copy of one histogram, taken for a snapshot row.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

// One metric in a registry snapshot.
struct MetricRow {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  Labels labels;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  HistogramData hist;
};

struct MetricsSnapshot {
  std::vector<MetricRow> rows;  // Sorted by (name, labels).
};

// The registry. One process-wide instance (Global()); tests instantiate
// their own for golden-output determinism. All methods are thread-safe;
// callback gauges are evaluated under the registry mutex at snapshot
// and sample time, so callbacks must be cheap and must not call back
// into the same registry.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry. Never destroyed (instrumented objects
  // may unregister callbacks during static teardown).
  static Registry& Global();

  // Idempotent by (name, labels): re-registration returns the existing
  // metric, so counts survive and accumulate across instances that
  // describe the same thing. Pointers remain valid for the registry's
  // lifetime. A (name, labels) key always resolves to one kind; asking
  // for the same key as a different kind throws std::logic_error.
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  Histogram* GetHistogram(const std::string& name, Labels labels = {});

  // Callback gauges: evaluated lazily at snapshot/sample time (how the
  // per-instance Stats structs publish without a write on their hot
  // paths). Multiple registrations under one (name, labels) key are
  // summed. The returned handle unregisters on destruction and MUST not
  // outlive the data the callback reads.
  class CallbackHandle {
   public:
    CallbackHandle() = default;
    CallbackHandle(CallbackHandle&& o) noexcept : reg_(o.reg_), id_(o.id_) { o.reg_ = nullptr; }
    CallbackHandle& operator=(CallbackHandle&& o) noexcept;
    ~CallbackHandle() { Release(); }
    void Release();

   private:
    friend class Registry;
    CallbackHandle(Registry* reg, uint64_t id) : reg_(reg), id_(id) {}
    Registry* reg_ = nullptr;
    uint64_t id_ = 0;
  };
  [[nodiscard]] CallbackHandle RegisterCallbackGauge(std::string name, Labels labels,
                                                     std::function<int64_t()> fn);

  // Consistent-enough copy of every metric (counters/histograms read
  // with relaxed loads; callback gauges evaluated now, duplicates
  // summed into their gauge row).
  MetricsSnapshot Snapshot() const;

  // For the periodic sampler: records every gauge's current value
  // (including callback gauges) into a sibling histogram named
  // "<name><suffix>" with the same labels, so gauges become lag/depth
  // *distributions* over time. Negative values clamp to 0.
  void SampleGauges(const std::string& suffix = ":sampled");

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& o) const {
      if (name != o.name) {
        return name < o.name;
      }
      return labels < o.labels;
    }
  };
  struct Slot {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Callback {
    Key key;
    std::function<int64_t()> fn;
  };

  Slot* GetSlotLocked(const std::string& name, const Labels& labels, MetricKind kind);
  Histogram* GetHistogramLocked(const std::string& name, const Labels& labels);
  void UnregisterCallback(uint64_t id);

  mutable std::mutex mu_;
  std::map<Key, Slot> metrics_;
  std::map<uint64_t, Callback> callbacks_;
  uint64_t next_callback_id_ = 1;
};

// Sorts a label set by key (metric identity is order-independent).
Labels NormalizeLabels(Labels labels);

}  // namespace obs
}  // namespace avm

#endif  // SRC_OBS_METRICS_H_
