#include "src/obs/export.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/obs/trace.h"

namespace avm {
namespace obs {
namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendLabelsJson(std::string* out, const Labels& labels) {
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      *out += ',';
    }
    first = false;
    *out += '"';
    AppendJsonEscaped(out, k);
    *out += "\":\"";
    AppendJsonEscaped(out, v);
    *out += '"';
  }
  *out += '}';
}

std::string SanitizeMetricName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  return out;
}

// {node="server",type="full"} — empty string for no labels. `extra` is
// appended last (used for the histogram "le" label).
std::string PromLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += SanitizeMetricName(k);
    out += "=\"";
    for (char c : v) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) {
      out += ',';
    }
    out += extra;
  }
  out += '}';
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void FillError(std::string* error, const std::string& path, const char* op) {
  if (error != nullptr) {
    *error = std::string(op) + " " + path + ": " + std::strerror(errno);
  }
}

}  // namespace

std::string MetricsJson(const MetricsSnapshot& snap) {
  std::string out = "[";
  bool first = true;
  for (const MetricRow& row : snap.rows) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, row.name);
    out += "\",\"labels\":";
    AppendLabelsJson(&out, row.labels);
    out += ",\"type\":\"";
    out += KindName(row.kind);
    out += '"';
    switch (row.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + std::to_string(row.counter_value);
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + std::to_string(row.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out += ",\"count\":" + std::to_string(row.hist.count);
        out += ",\"sum\":" + std::to_string(row.hist.sum);
        out += ",\"buckets\":[";
        bool bfirst = true;
        for (size_t i = 0; i < Histogram::kBuckets; i++) {
          if (row.hist.buckets[i] == 0) {
            continue;  // Sparse: a 40-bucket histogram is mostly zeros.
          }
          if (!bfirst) {
            out += ',';
          }
          bfirst = false;
          out += '[' + std::to_string(Histogram::BucketUpperBound(i)) + ',' +
                 std::to_string(row.hist.buckets[i]) + ']';
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snap, const std::string& prefix) {
  std::string out;
  std::string last_typed;  // Emit # TYPE once per metric name.
  for (const MetricRow& row : snap.rows) {
    const std::string name = prefix + SanitizeMetricName(row.name);
    if (name != last_typed) {
      out += "# TYPE " + name + " " + KindName(row.kind) + "\n";
      last_typed = name;
    }
    switch (row.kind) {
      case MetricKind::kCounter:
        out += name + PromLabels(row.labels) + " " + std::to_string(row.counter_value) + "\n";
        break;
      case MetricKind::kGauge:
        out += name + PromLabels(row.labels) + " " + std::to_string(row.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        uint64_t cum = 0;
        for (size_t i = 0; i < Histogram::kBuckets; i++) {
          if (row.hist.buckets[i] == 0 && i + 1 < Histogram::kBuckets) {
            continue;  // Skip empty interior buckets; +Inf always emitted.
          }
          cum += row.hist.buckets[i];
          const std::string le = (i + 1 == Histogram::kBuckets)
                                     ? "+Inf"
                                     : std::to_string(Histogram::BucketUpperBound(i));
          out += name + "_bucket" + PromLabels(row.labels, "le=\"" + le + "\"") + " " +
                 std::to_string(cum) + "\n";
        }
        out += name + "_sum" + PromLabels(row.labels) + " " + std::to_string(row.hist.sum) + "\n";
        out += name + "_count" + PromLabels(row.labels) + " " + std::to_string(row.hist.count) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string SnapshotJson() {
  std::string out = "{\"enabled\":";
  out += Enabled() ? "true" : "false";
  out += ",\"metrics\":";
  out += MetricsJson(Registry::Global().Snapshot());
  out += ",\"phases\":[";
  bool first = true;
  for (const auto& [phase, totals] : PhaseAggregates()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"phase\":\"";
    AppendJsonEscaped(&out, phase);
    out += "\",\"count\":" + std::to_string(totals.count);
    out += ",\"total_us\":" + std::to_string(totals.total_us) + "}";
  }
  out += "],\"trace\":{\"events\":" + std::to_string(TraceEventCount());
  out += ",\"dropped\":" + std::to_string(TraceEventsDropped()) + "}}";
  return out;
}

bool WriteFileAtomic(const std::string& path, const std::string& content, std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    FillError(error, tmp, "fopen");
    return false;
  }
  const size_t written = content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  if (written != content.size()) {
    FillError(error, tmp, "fwrite");
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::fclose(f) != 0) {
    FillError(error, tmp, "fclose");
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    FillError(error, path, "rename");
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool WriteSnapshotJson(const std::string& path, std::string* error) {
  return WriteFileAtomic(path, SnapshotJson(), error);
}

bool WritePrometheus(const std::string& path, std::string* error) {
  return WriteFileAtomic(path, PrometheusText(Registry::Global().Snapshot()), error);
}

bool WriteChromeTrace(const std::string& path, std::string* error) {
  return WriteFileAtomic(path, ChromeTraceJson(), error);
}

}  // namespace obs
}  // namespace avm
