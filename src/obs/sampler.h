// Periodic gauge sampler: a background thread that, while telemetry is
// enabled, records every gauge (including the callback gauges the
// Stats compatibility views publish through) into sibling
// "<name>:sampled" histograms. Instantaneous values — signer queue
// depth, durability-watermark lag, fleet online lag — become
// distributions over the run, which is what the ROADMAP's fleet
// scale-out item needs from §6.11-style lag tracking.
#ifndef SRC_OBS_SAMPLER_H_
#define SRC_OBS_SAMPLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/metrics.h"

namespace avm {
namespace obs {

class GaugeSampler {
 public:
  // Samples `registry` every `period_ms` while obs::Enabled(). Starts
  // immediately; Stop() (or destruction) joins the thread.
  explicit GaugeSampler(Registry* registry, uint32_t period_ms = 100,
                        std::string suffix = ":sampled");
  GaugeSampler(const GaugeSampler&) = delete;
  GaugeSampler& operator=(const GaugeSampler&) = delete;
  ~GaugeSampler() { Stop(); }

  void Stop();

  // Completed sampling ticks (skipped ticks while disabled don't count).
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  Registry* registry_;
  const uint32_t period_ms_;
  const std::string suffix_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> ticks_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace avm

#endif  // SRC_OBS_SAMPLER_H_
