#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "src/obs/metrics.h"

namespace avm {
namespace obs {
namespace {

std::atomic<bool> g_enabled{false};

// Small dense thread ids for trace events: Perfetto renders one track
// per (pid, tid), and hashed std::thread::ids make unreadable tracks.
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{1};
  static thread_local const uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

struct TraceEvent {
  const char* name;
  const char* cat;
  uint64_t ts_us;
  uint64_t dur_us;
  uint32_t tid;
};

// Global trace sink. Events are bounded (the aggregates are not): a
// long fleet run keeps exact phase totals while the event buffer holds
// the most recent-run window for Perfetto.
class TraceLog {
 public:
  static TraceLog& Get() {
    static TraceLog* g = new TraceLog();
    return *g;
  }

  static constexpr size_t kMaxEvents = 1u << 18;

  void RecordSpanEnd(const char* phase, const char* cat, uint64_t start_us, uint64_t dur_us) {
    Histogram* hist = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (events_.size() < kMaxEvents) {
        events_.push_back(TraceEvent{phase, cat, start_us, dur_us, CurrentTid()});
      } else {
        dropped_++;
      }
      PhaseTotals& agg = aggregates_[phase];
      agg.count++;
      agg.total_us += dur_us;
      auto it = phase_hists_.find(phase);
      if (it == phase_hists_.end()) {
        it = phase_hists_
                 .emplace(phase, Registry::Global().GetHistogram("span_us", {{"phase", phase}}))
                 .first;
      }
      hist = it->second;
    }
    // Outside mu_: the registry has its own lock.
    hist->Record(dur_us);
  }

  PhaseTotals Totals(const std::string& phase) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = aggregates_.find(phase);
    return it == aggregates_.end() ? PhaseTotals{} : it->second;
  }

  std::vector<std::pair<std::string, PhaseTotals>> AllTotals() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {aggregates_.begin(), aggregates_.end()};
  }

  std::string ChromeJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    out.reserve(64 + events_.size() * 96);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& e : events_) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += "{\"name\":\"";
      out += e.name;  // Phase names are static identifiers; no escaping needed.
      out += "\",\"cat\":\"";
      out += e.cat;
      out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(e.tid);
      out += ",\"ts\":";
      out += std::to_string(e.ts_us);
      out += ",\"dur\":";
      out += std::to_string(e.dur_us);
      out += '}';
    }
    out += "]}";
    return out;
  }

  size_t EventCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  uint64_t Dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    aggregates_.clear();
    dropped_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::string, PhaseTotals> aggregates_;
  std::map<std::string, Histogram*> phase_hists_;  // span_us{phase=...}, cached.
  uint64_t dropped_ = 0;
};

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch).count());
}

Span::Span(const char* phase, const char* cat)
    : phase_(phase), cat_(cat), active_(Enabled()) {
  if (active_) {
    start_us_ = NowMicros();
  }
}

double Span::End() {
  if (!active_) {
    return 0.0;
  }
  active_ = false;
  const uint64_t dur = NowMicros() - start_us_;
  TraceLog::Get().RecordSpanEnd(phase_, cat_, start_us_, dur);
  return static_cast<double>(dur) / 1e6;
}

double PhaseSeconds(const std::string& phase) {
  return static_cast<double>(TraceLog::Get().Totals(phase).total_us) / 1e6;
}

uint64_t PhaseCount(const std::string& phase) { return TraceLog::Get().Totals(phase).count; }

std::vector<std::pair<std::string, PhaseTotals>> PhaseAggregates() {
  return TraceLog::Get().AllTotals();
}

std::string ChromeTraceJson() { return TraceLog::Get().ChromeJson(); }

size_t TraceEventCount() { return TraceLog::Get().EventCount(); }

uint64_t TraceEventsDropped() { return TraceLog::Get().Dropped(); }

void ResetTrace() { TraceLog::Get().Reset(); }

}  // namespace obs
}  // namespace avm
