#include "src/chaos/adversary.h"

#include <stdexcept>

namespace avm {
namespace chaos {

AdversarialSource::AdversarialSource(const SegmentSource& honest) : node_(honest.node()) {
  if (honest.LastSeq() == 0) {
    throw std::invalid_argument("AdversarialSource: honest log is empty");
  }
  LogSegment all = honest.Extract(1, honest.LastSeq());
  entries_ = std::move(all.entries);
}

void AdversarialSource::RechainFrom(uint64_t seq) {
  Hash256 prev = seq >= 2 ? entries_.at(seq - 2).hash : Hash256::Zero();
  for (uint64_t s = seq; s <= entries_.size(); s++) {
    LogEntry& e = entries_[s - 1];
    e.hash = ChainHash(prev, e.seq, e.type, e.content);
    prev = e.hash;
  }
}

void AdversarialSource::Equivocate(uint64_t seq) {
  LogEntry& t = entries_.at(seq - 1);
  if (t.content.empty()) {
    t.content.push_back(0);
  }
  t.content[0] ^= 0x5a;
  RechainFrom(seq);
}

void AdversarialSource::RewindTo(uint64_t seq) {
  if (seq >= entries_.size()) {
    return;
  }
  entries_.resize(seq);
}

void AdversarialSource::Omit(uint64_t seq) {
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(seq - 1));
  for (uint64_t s = seq; s <= entries_.size(); s++) {
    entries_[s - 1].seq = s;
  }
  RechainFrom(seq == 1 ? 1 : seq);
}

size_t AdversarialSource::ApplyDue(FaultInjector& injector, SimTime now) {
  size_t applied = 0;
  auto pick = [&](uint64_t requested) {
    // seq 0 = "anywhere": mid-log is the interesting spot (behind
    // authenticators, ahead of genesis).
    if (requested >= 1 && requested <= entries_.size()) return requested;
    return entries_.size() / 2 + 1;
  };
  for (const FaultEvent& e : injector.TakeDue(FaultType::kAvmmEquivocate, node_, now)) {
    Equivocate(pick(e.seq));
    applied++;
  }
  for (const FaultEvent& e : injector.TakeDue(FaultType::kAvmmOmit, node_, now)) {
    Omit(pick(e.seq));
    applied++;
  }
  for (const FaultEvent& e : injector.TakeDue(FaultType::kAvmmRewind, node_, now)) {
    RewindTo(pick(e.seq));
    applied++;
  }
  return applied;
}

LogSegment AdversarialSource::Extract(uint64_t from_seq, uint64_t to_seq) const {
  if (from_seq < 1 || to_seq > entries_.size() || from_seq > to_seq) {
    throw std::out_of_range("AdversarialSource: bad range");
  }
  LogSegment seg;
  seg.node = node_;
  seg.prior_hash = from_seq == 1 ? Hash256::Zero() : entries_[from_seq - 2].hash;
  seg.entries.assign(entries_.begin() + static_cast<ptrdiff_t>(from_seq - 1),
                     entries_.begin() + static_cast<ptrdiff_t>(to_seq));
  return seg;
}

void AdversarialSource::Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const {
  for (uint64_t s = from_seq; s <= to_seq; s++) {
    if (!visit(entries_.at(s - 1))) {
      return;
    }
  }
}

}  // namespace chaos
}  // namespace avm
