// Deterministic, seed-reproducible fault injection (the chaos engine).
//
// The paper's guarantee is universal: *every* misbehavior — Byzantine
// or environmental, alone or composed — must end in verifiable
// evidence or an honest verdict, never a silent pass. Single-fault
// tests (one cheat, one kill point, one partition) cannot establish
// that for compositions like crash-then-equivocate-under-partition, so
// this module makes faults a first-class, declarative input:
//
//   FaultPlan      a schedule of FaultEvents, keyed on virtual time,
//                  sequence number and call site, plus one root seed;
//   FaultInjector  the runtime that evaluates the plan at each layer's
//                  injection seam and derives all randomness from the
//                  plan seed, so any run reproduces from one number.
//
// Seams, one per layer:
//   net    SimNetwork::SetFaultInjector — drop / duplicate / reorder /
//          delay / corrupt-frame per frame, plus time-windowed
//          partitions (OnNetFrame).
//   store  LogStoreOptions::fault_hook (src/store/fault.h) — IO error /
//          short write / fsync failure / simulated crash at the named
//          write-path sites (FaultInjector::StoreHook adapts a plan).
//   avmm   adversary actions — equivocate / rewind / omit — applied to
//          the log an auditee *serves* (chaos::AdversarialSource
//          consumes them via TakeDue).
//   audit  worker death and slow-peer stalls before each fleet job
//          attempt (FleetAuditConfig::chaos → OnAuditJob); checkpoint
//          corruption/staleness events are consumed by the harness via
//          TakeDue and applied to the checkpoint files.
//
// Determinism contract: an *empty* plan consumes no randomness and
// changes no behavior — logs and verdicts are bit-for-bit those of a
// build with no injector installed. Every injected decision draws from
// a per-event Prng seeded by DeriveSeed(plan.seed, event tag), so two
// runs with the same plan make identical choices.
#ifndef SRC_CHAOS_FAULT_PLAN_H_
#define SRC_CHAOS_FAULT_PLAN_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/crypto/keys.h"
#include "src/obs/metrics.h"
#include "src/store/fault.h"
#include "src/util/bytes.h"
#include "src/util/clock.h"
#include "src/util/prng.h"

namespace avm {
namespace chaos {

enum class FaultLayer : uint8_t { kNet = 0, kStore, kAvmm, kAudit };

enum class FaultType : uint8_t {
  // net
  kNetDrop = 0,
  kNetDuplicate,
  kNetReorder,   // Random extra delay in [0, delay_us] per frame.
  kNetDelay,     // Fixed extra delay of delay_us.
  kNetPartition, // Frames between a and b dropped while in the window.
  kNetCorruptFrame,
  // store (mapped onto StoreFaultAction by MakeStoreFaultHook)
  kStoreIoError,
  kStoreShortWrite,
  kStoreFsyncFail,
  kStoreCrashPoint,
  // avmm adversary (consumed by AdversarialSource::ApplyDue)
  kAvmmCrashRestart,  // Consumed by the harness: kill + reopen the auditee.
  kAvmmEquivocate,    // Serve a self-consistent fork tampered at `seq`.
  kAvmmRewind,        // Serve only the prefix up to `seq`.
  kAvmmOmit,          // Drop entry `seq`, resequence + rechain the tail.
  // audit service
  kAuditWorkerDeath,       // The job attempt dies with an exception.
  kAuditSlowPeer,          // The attempt stalls delay_us before running.
  kAuditCorruptCheckpoint, // Harness: flip bytes in the .ckpt file.
  kAuditStaleCheckpoint,   // Harness: restore an earlier .ckpt file.
};

FaultLayer LayerOf(FaultType t);
const char* FaultTypeName(FaultType t);
const char* FaultLayerName(FaultLayer l);

constexpr uint64_t kNoBound = std::numeric_limits<uint64_t>::max();

// When an event applies. All predicates must hold; defaults match
// everything. Layers without a clock (store, audit) evaluate with
// now = 0, so time windows only constrain net/avmm events.
struct FaultTrigger {
  SimTime after_us = 0;        // Fire at now >= after_us ...
  SimTime before_us = kNoBound;  // ... and now < before_us.
  uint64_t from_seq = 0;       // Site-specific ordinal (store: entry seq;
  uint64_t to_seq = kNoBound;  // audit: attempt number), inclusive.
  std::string site;            // "" = any. net: "src->dst"; store: the
                               // StoreFaultSite point; audit: job type.
  std::string node;            // "" = any node (net: either endpoint).
  uint64_t every_n = 1;        // Fire on every Nth matching occurrence.
  double probability = 1.0;    // Bernoulli per matching occurrence.
  uint64_t max_fires = kNoBound;
};

struct FaultEvent {
  FaultType type = FaultType::kNetDrop;
  FaultTrigger when;
  SimTime delay_us = 0;   // kNetDelay/kNetReorder bound; kAuditSlowPeer stall.
  uint32_t count = 1;     // kNetDuplicate: extra copies per frame.
  NodeId a, b;            // kNetPartition endpoints ("" = all pairs).
  uint64_t seq = 0;       // kAvmm*: target log seq (0 = pick from rng).
};

struct FaultPlan {
  uint64_t seed = 1;  // Root of every chaos RNG stream.
  std::vector<FaultEvent> events;

  FaultPlan& Add(FaultEvent e) {
    events.push_back(std::move(e));
    return *this;
  }
  bool empty() const { return events.empty(); }
  // One line per event — what a failing chaos test dumps next to the
  // reproducing seed.
  std::string Describe() const;
};

// One root seed → per-purpose streams that stay stable when unrelated
// consumers are added (tag-keyed, not order-keyed). Also used by the
// scenarios to derive their SimNetwork seeds.
uint64_t DeriveSeed(uint64_t root, std::string_view tag);

// What the net seam applies to one frame (zero value = untouched).
struct NetFaultDecision {
  bool drop = false;
  uint32_t duplicates = 0;    // Extra copies queued with the same latency.
  SimTime extra_delay_us = 0; // Added to the link latency (delay/reorder).
};

// What the audit seam applies to one job attempt.
struct JobFault {
  bool fail = false;        // Throw before the audit runs.
  SimTime stall_us = 0;     // Sleep this long first (slow peer).
  std::string what;         // Error string for the failed attempt.
};

// Evaluates a FaultPlan at the injection seams. Thread-safe: the store
// hook runs on writer/flusher threads and the audit seam on fleet
// workers, concurrently with the (single-threaded) net seam.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  uint64_t seed() const { return plan_.seed; }

  // --- net seam (SimNetwork::SendFrame) -------------------------------
  // May corrupt *frame in place (kNetCorruptFrame). With an empty plan
  // this returns the zero decision without taking the lock or touching
  // any rng.
  NetFaultDecision OnNetFrame(SimTime now, const NodeId& src, const NodeId& dst,
                              Bytes* frame);

  // --- store seam -----------------------------------------------------
  // Adapter installable as LogStoreOptions::fault_hook for the store
  // holding `node`'s log. First firing store event wins.
  std::function<StoreFaultAction(const StoreFaultSite&)> StoreHook(NodeId node);
  StoreFaultAction OnStoreSite(const NodeId& node, const StoreFaultSite& site);

  // --- audit seam (FleetAuditService, before each attempt) ------------
  JobFault OnAuditJob(const NodeId& node, const char* job_type, uint64_t attempt);

  // --- avmm / harness-applied events ----------------------------------
  // Consumes (at most once each) the events of `type` targeting `node`
  // whose time window contains `now`; returns copies in plan order.
  std::vector<FaultEvent> TakeDue(FaultType type, const NodeId& node, SimTime now);

  // Total faults injected so far (all events). Zero for an empty plan —
  // what the bit-identical test asserts.
  uint64_t injected_total() const;
  uint64_t fires(size_t event_index) const;

 private:
  struct EventState {
    Prng rng{0};
    uint64_t occurrences = 0;
    uint64_t fires = 0;
    bool consumed = false;  // TakeDue() one-shot marker.
    obs::Counter* injected = nullptr;
  };

  // Evaluates event i's trigger for one occurrence at (now, site,
  // node_a/node_b, seq); on a match past every_n/probability/max_fires,
  // counts the fire and returns true. Caller holds mu_.
  bool TriggerFires(size_t i, SimTime now, std::string_view site, const NodeId& node_a,
                    const NodeId& node_b, uint64_t seq);
  void CorruptFrame(Prng& rng, Bytes* frame);

  FaultPlan plan_;
  mutable std::mutex mu_;
  std::vector<EventState> state_;
};

}  // namespace chaos
}  // namespace avm

#endif  // SRC_CHAOS_FAULT_PLAN_H_
