#include "src/chaos/fault_plan.h"

#include <cstring>

namespace avm {
namespace chaos {

FaultLayer LayerOf(FaultType t) {
  switch (t) {
    case FaultType::kNetDrop:
    case FaultType::kNetDuplicate:
    case FaultType::kNetReorder:
    case FaultType::kNetDelay:
    case FaultType::kNetPartition:
    case FaultType::kNetCorruptFrame:
      return FaultLayer::kNet;
    case FaultType::kStoreIoError:
    case FaultType::kStoreShortWrite:
    case FaultType::kStoreFsyncFail:
    case FaultType::kStoreCrashPoint:
      return FaultLayer::kStore;
    case FaultType::kAvmmCrashRestart:
    case FaultType::kAvmmEquivocate:
    case FaultType::kAvmmRewind:
    case FaultType::kAvmmOmit:
      return FaultLayer::kAvmm;
    case FaultType::kAuditWorkerDeath:
    case FaultType::kAuditSlowPeer:
    case FaultType::kAuditCorruptCheckpoint:
    case FaultType::kAuditStaleCheckpoint:
      return FaultLayer::kAudit;
  }
  return FaultLayer::kNet;
}

const char* FaultTypeName(FaultType t) {
  switch (t) {
    case FaultType::kNetDrop: return "net-drop";
    case FaultType::kNetDuplicate: return "net-duplicate";
    case FaultType::kNetReorder: return "net-reorder";
    case FaultType::kNetDelay: return "net-delay";
    case FaultType::kNetPartition: return "net-partition";
    case FaultType::kNetCorruptFrame: return "net-corrupt-frame";
    case FaultType::kStoreIoError: return "store-io-error";
    case FaultType::kStoreShortWrite: return "store-short-write";
    case FaultType::kStoreFsyncFail: return "store-fsync-fail";
    case FaultType::kStoreCrashPoint: return "store-crash";
    case FaultType::kAvmmCrashRestart: return "avmm-crash-restart";
    case FaultType::kAvmmEquivocate: return "avmm-equivocate";
    case FaultType::kAvmmRewind: return "avmm-rewind";
    case FaultType::kAvmmOmit: return "avmm-omit";
    case FaultType::kAuditWorkerDeath: return "audit-worker-death";
    case FaultType::kAuditSlowPeer: return "audit-slow-peer";
    case FaultType::kAuditCorruptCheckpoint: return "audit-corrupt-checkpoint";
    case FaultType::kAuditStaleCheckpoint: return "audit-stale-checkpoint";
  }
  return "?";
}

const char* FaultLayerName(FaultLayer l) {
  switch (l) {
    case FaultLayer::kNet: return "net";
    case FaultLayer::kStore: return "store";
    case FaultLayer::kAvmm: return "avmm";
    case FaultLayer::kAudit: return "audit";
  }
  return "?";
}

uint64_t DeriveSeed(uint64_t root, std::string_view tag) {
  // FNV-1a over the tag folded into the root, then a SplitMix64 round
  // so nearby roots/tags land far apart in the stream space.
  uint64_t h = 1469598103934665603ULL;
  for (char c : tag) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  uint64_t z = root ^ h;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string FaultPlan::Describe() const {
  std::string out = "FaultPlan{seed=" + std::to_string(seed) + ", " +
                    std::to_string(events.size()) + " events";
  for (size_t i = 0; i < events.size(); i++) {
    const FaultEvent& e = events[i];
    out += "\n  [" + std::to_string(i) + "] " + FaultTypeName(e.type);
    const FaultTrigger& t = e.when;
    if (t.after_us != 0 || t.before_us != kNoBound) {
      out += " t=[" + std::to_string(t.after_us) + "," +
             (t.before_us == kNoBound ? std::string("inf") : std::to_string(t.before_us)) + ")";
    }
    if (t.from_seq != 0 || t.to_seq != kNoBound) {
      out += " seq=[" + std::to_string(t.from_seq) + "," +
             (t.to_seq == kNoBound ? std::string("inf") : std::to_string(t.to_seq)) + "]";
    }
    if (!t.site.empty()) out += " site=" + t.site;
    if (!t.node.empty()) out += " node=" + t.node;
    if (t.every_n > 1) out += " every=" + std::to_string(t.every_n);
    if (t.probability < 1.0) out += " p=" + std::to_string(t.probability);
    if (t.max_fires != kNoBound) out += " max=" + std::to_string(t.max_fires);
    if (e.delay_us != 0) out += " delay_us=" + std::to_string(e.delay_us);
    if (e.seq != 0) out += " target_seq=" + std::to_string(e.seq);
    if (!e.a.empty() || !e.b.empty()) out += " pair=" + e.a + "|" + e.b;
  }
  out += "}";
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  state_.resize(plan_.events.size());
  auto& reg = obs::Registry::Global();
  for (size_t i = 0; i < plan_.events.size(); i++) {
    const FaultEvent& e = plan_.events[i];
    // Per-event stream: stable under plan edits elsewhere in the list
    // as long as (index, type) stays put.
    state_[i].rng =
        Prng(DeriveSeed(plan_.seed, std::string(FaultTypeName(e.type)) + "#" + std::to_string(i)));
    state_[i].injected = reg.GetCounter(
        "chaos_injected_faults", {{"layer", FaultLayerName(LayerOf(e.type))},
                                  {"type", FaultTypeName(e.type)}});
  }
}

bool FaultInjector::TriggerFires(size_t i, SimTime now, std::string_view site,
                                 const NodeId& node_a, const NodeId& node_b, uint64_t seq) {
  const FaultTrigger& t = plan_.events[i].when;
  EventState& st = state_[i];
  if (now < t.after_us || now >= t.before_us) return false;
  if (seq < t.from_seq || seq > t.to_seq) return false;
  if (!t.site.empty() && t.site != site) return false;
  if (!t.node.empty() && t.node != node_a && t.node != node_b) return false;
  st.occurrences++;
  if (st.fires >= t.max_fires) return false;
  if (t.every_n > 1 && (st.occurrences - 1) % t.every_n != 0) return false;
  if (t.probability < 1.0 && !st.rng.Chance(t.probability)) return false;
  st.fires++;
  st.injected->Inc();
  return true;
}

void FaultInjector::CorruptFrame(Prng& rng, Bytes* frame) {
  if (frame == nullptr || frame->empty()) return;
  // Flip 1..3 bytes with a guaranteed-nonzero xor so the frame always
  // actually changes (the transport must reject it, never crash).
  uint64_t flips = 1 + rng.Below(3);
  for (uint64_t f = 0; f < flips; f++) {
    size_t pos = static_cast<size_t>(rng.Below(frame->size()));
    (*frame)[pos] ^= static_cast<uint8_t>(rng.Next() | 1);
  }
}

NetFaultDecision FaultInjector::OnNetFrame(SimTime now, const NodeId& src, const NodeId& dst,
                                           Bytes* frame) {
  NetFaultDecision d;
  if (plan_.events.empty()) return d;
  std::lock_guard<std::mutex> lk(mu_);
  const std::string site = src + "->" + dst;
  for (size_t i = 0; i < plan_.events.size(); i++) {
    const FaultEvent& e = plan_.events[i];
    if (LayerOf(e.type) != FaultLayer::kNet) continue;
    if (e.type == FaultType::kNetPartition) {
      // Time-windowed partition; ignores the occurrence predicates (a
      // partition is a condition, not a per-frame event).
      const FaultTrigger& t = e.when;
      bool pair = (e.a.empty() && e.b.empty()) || (src == e.a && dst == e.b) ||
                  (src == e.b && dst == e.a);
      if (pair && now >= t.after_us && now < t.before_us) {
        state_[i].fires++;
        state_[i].injected->Inc();
        d.drop = true;
        return d;
      }
      continue;
    }
    if (!TriggerFires(i, now, site, src, dst, /*seq=*/0)) continue;
    switch (e.type) {
      case FaultType::kNetDrop:
        d.drop = true;
        return d;
      case FaultType::kNetDuplicate:
        d.duplicates += e.count == 0 ? 1 : e.count;
        break;
      case FaultType::kNetDelay:
        d.extra_delay_us += e.delay_us;
        break;
      case FaultType::kNetReorder:
        d.extra_delay_us += state_[i].rng.Below(e.delay_us + 1);
        break;
      case FaultType::kNetCorruptFrame:
        CorruptFrame(state_[i].rng, frame);
        break;
      default:
        break;
    }
  }
  return d;
}

StoreFaultAction FaultInjector::OnStoreSite(const NodeId& node, const StoreFaultSite& site) {
  if (plan_.events.empty()) return StoreFaultAction::kNone;
  std::lock_guard<std::mutex> lk(mu_);
  for (size_t i = 0; i < plan_.events.size(); i++) {
    const FaultEvent& e = plan_.events[i];
    if (LayerOf(e.type) != FaultLayer::kStore) continue;
    // Stores have no sim clock; triggers key on site/seq/every_n.
    if (!TriggerFires(i, /*now=*/0, site.point, node, node, site.seq)) continue;
    switch (e.type) {
      case FaultType::kStoreIoError: return StoreFaultAction::kIoError;
      case FaultType::kStoreShortWrite: return StoreFaultAction::kShortWrite;
      case FaultType::kStoreFsyncFail: return StoreFaultAction::kFsyncFail;
      case FaultType::kStoreCrashPoint: return StoreFaultAction::kCrash;
      default: break;
    }
  }
  return StoreFaultAction::kNone;
}

std::function<StoreFaultAction(const StoreFaultSite&)> FaultInjector::StoreHook(NodeId node) {
  return [this, node = std::move(node)](const StoreFaultSite& site) {
    return OnStoreSite(node, site);
  };
}

JobFault FaultInjector::OnAuditJob(const NodeId& node, const char* job_type, uint64_t attempt) {
  JobFault f;
  if (plan_.events.empty()) return f;
  std::lock_guard<std::mutex> lk(mu_);
  for (size_t i = 0; i < plan_.events.size(); i++) {
    const FaultEvent& e = plan_.events[i];
    if (e.type != FaultType::kAuditWorkerDeath && e.type != FaultType::kAuditSlowPeer) continue;
    // No sim clock on the audit side either; `seq` is the attempt, so
    // from_seq/to_seq express "fail the first N attempts".
    if (!TriggerFires(i, /*now=*/0, job_type, node, node, attempt)) continue;
    if (e.type == FaultType::kAuditSlowPeer) {
      f.stall_us += e.delay_us;
    } else {
      f.fail = true;
      f.what = "chaos: injected worker death (" + std::string(job_type) + " attempt " +
               std::to_string(attempt) + " on " + node + ")";
    }
  }
  return f;
}

std::vector<FaultEvent> FaultInjector::TakeDue(FaultType type, const NodeId& node, SimTime now) {
  std::vector<FaultEvent> due;
  std::lock_guard<std::mutex> lk(mu_);
  for (size_t i = 0; i < plan_.events.size(); i++) {
    const FaultEvent& e = plan_.events[i];
    EventState& st = state_[i];
    if (e.type != type || st.consumed) continue;
    const FaultTrigger& t = e.when;
    if (now < t.after_us || now >= t.before_us) continue;
    if (!t.node.empty() && t.node != node) continue;
    st.consumed = true;
    st.fires++;
    st.injected->Inc();
    due.push_back(e);
  }
  return due;
}

uint64_t FaultInjector::injected_total() const {
  std::lock_guard<std::mutex> lk(mu_);
  uint64_t total = 0;
  for (const EventState& st : state_) total += st.fires;
  return total;
}

uint64_t FaultInjector::fires(size_t event_index) const {
  std::lock_guard<std::mutex> lk(mu_);
  return state_.at(event_index).fires;
}

}  // namespace chaos
}  // namespace avm
