// The adversarial auditee: a SegmentSource view an equivocating,
// rewinding or omitting machine would *serve* to its auditor (§2.2's
// threat model — the auditee controls its own log bytes; only the hash
// chain, the authenticators and replay constrain what it can get away
// with). Generalizes the bespoke tampered-source test doubles into a
// plan-driven component: chaos plans schedule kAvmmEquivocate /
// kAvmmRewind / kAvmmOmit events and ApplyDue() turns them into log
// mutations, so compositions (crash *then* equivocate, rewind *during*
// a partition) are one declarative schedule.
//
// Every mutation keeps the served log self-consistent under the hash
// rule (rechained), so detection must come from the protocol itself:
// authenticators held by peers, checkpoints, or replay divergence —
// exactly the paper's argument, and what chaos_test asserts.
#ifndef SRC_CHAOS_ADVERSARY_H_
#define SRC_CHAOS_ADVERSARY_H_

#include <vector>

#include "src/chaos/fault_plan.h"
#include "src/tel/log.h"
#include "src/tel/segment_source.h"

namespace avm {
namespace chaos {

class AdversarialSource final : public SegmentSource {
 public:
  // Snapshots `honest` (entries 1..LastSeq) as the starting point; with
  // no mutations applied the served log is bit-for-bit the honest one.
  explicit AdversarialSource(const SegmentSource& honest);

  // Flip entry `seq`'s content and rechain from there: a self-
  // consistent fork of the log (equivocation). Detected by any peer
  // authenticator at or after `seq`, or by replay.
  void Equivocate(uint64_t seq);
  // Serve only the prefix 1..seq (the log "shrank": what a rewinding
  // machine presents). OnlineAuditor surfaces this as kTargetRewound.
  void RewindTo(uint64_t seq);
  // Drop entry `seq` entirely, resequence and rechain the tail: the
  // tampered continuation a machine hiding one event would serve.
  void Omit(uint64_t seq);

  // Consumes the due kAvmmEquivocate/kAvmmRewind/kAvmmOmit events for
  // this node from the plan and applies them (events with seq == 0 pick
  // a target seq from the event's derived rng via the injector's plan
  // seed — here simply mid-log). Returns how many were applied.
  size_t ApplyDue(FaultInjector& injector, SimTime now);

  // SegmentSource. LastSeq shrinks after RewindTo/Omit — deliberately:
  // a registered online session sees the same object mutate.
  const NodeId& node() const override { return node_; }
  uint64_t LastSeq() const override { return entries_.size(); }
  LogSegment Extract(uint64_t from_seq, uint64_t to_seq) const override;
  void Scan(uint64_t from_seq, uint64_t to_seq, const EntryVisitor& visit) const override;

 private:
  void RechainFrom(uint64_t seq);

  NodeId node_;
  std::vector<LogEntry> entries_;
};

}  // namespace chaos
}  // namespace avm

#endif  // SRC_CHAOS_ADVERSARY_H_
